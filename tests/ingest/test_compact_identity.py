"""Append-then-compact byte-identity: the PR-9 tentpole invariant.

A session that bulk-loads rows and a session that loads a base, appends
the rest through the delta path, and compacts must be indistinguishable:
identical Result columns AND identical modeled Timeline spans, for every
mode × theta strategy × emit shape, under an aggressively evicting view
budget, and on a 4-shard sharded session (whose compaction replays the
bulk-load path — fresh round-robin partition, recorded ``bwdecompose``
replay, code-band repartition over the union).
"""

import numpy as np
import pytest

from repro import IntType, Session
from repro.shard import ShardedSession
from repro.storage.decompose import set_view_budget

N = 3_000
D = 400
M = 250
DOMAIN = 40_000


@pytest.fixture(autouse=True)
def restore_budget():
    yield
    set_view_budget(None)


def _all_data(seed=9):
    rng = np.random.default_rng(seed)
    fact = {
        "v": rng.integers(0, DOMAIN, N + D).astype(np.int64),
        "w": rng.integers(0, 50, N + D).astype(np.int64),
    }
    right = {"p": rng.integers(0, DOMAIN, M).astype(np.int64)}
    return fact, right


def _split(fact):
    base = {c: fact[c][:N] for c in fact}
    delta = {c: fact[c][N:] for c in fact}
    return base, delta


def make_bulk():
    fact, right = _all_data()
    s = Session()
    s.create_table("fact", {"v": IntType(), "w": IntType()}, fact)
    s.create_table("r", {"p": IntType()}, right)
    s.bwdecompose("fact", "v", 24)
    s.bwdecompose("fact", "w", 24)
    s.bwdecompose("r", "p", 24)
    return s


def make_compacted():
    fact, right = _all_data()
    base, delta = _split(fact)
    s = Session()
    s.create_table("fact", {"v": IntType(), "w": IntType()}, base)
    s.create_table("r", {"p": IntType()}, right)
    s.bwdecompose("fact", "v", 24)
    s.bwdecompose("fact", "w", 24)
    s.bwdecompose("r", "p", 24)
    # Two appends, so compaction folds a multi-chunk delta.
    half = D // 2
    s.append("fact", {c: delta[c][:half] for c in delta})
    s.append("fact", {c: delta[c][half:] for c in delta})
    assert s.catalog.delta_rows("fact") == D
    assert s.compact("fact") == D
    assert s.catalog.delta_rows("fact") == 0
    return s


def make_sharded_bulk(n_shards=4):
    fact, right = _all_data()
    s = ShardedSession(n_shards)
    s.create_table("fact", {"v": IntType(), "w": IntType()}, fact)
    s.create_table("r", {"p": IntType()}, right, partition=False)
    s.bwdecompose("fact", "v", 24)
    s.bwdecompose("fact", "w", 24)
    s.bwdecompose("r", "p", 24)
    return s


def make_sharded_compacted(n_shards=4):
    fact, right = _all_data()
    base, delta = _split(fact)
    s = ShardedSession(n_shards)
    s.create_table("fact", {"v": IntType(), "w": IntType()}, base)
    s.create_table("r", {"p": IntType()}, right, partition=False)
    s.bwdecompose("fact", "v", 24)
    s.bwdecompose("fact", "w", 24)
    s.bwdecompose("r", "p", 24)
    s.append("fact", delta)
    assert s.compact("fact") == D
    return s


def assert_byte_identical(a, b, msg=""):
    assert a.row_count == b.row_count, msg
    assert a.columns.keys() == b.columns.keys(), msg
    for k in a.columns:
        assert np.array_equal(a.columns[k], b.columns[k]), (msg, k)
    assert a.timeline.span_tuples() == b.timeline.span_tuples(), msg
    assert a.decimal_scales == b.decimal_scales, msg
    if a.approximate is None or b.approximate is None:
        assert a.approximate is b.approximate, msg
    else:
        assert a.approximate.aggregates == b.approximate.aggregates, msg
        assert a.approximate.candidate_rows == b.approximate.candidate_rows, msg


@pytest.fixture(scope="module")
def bulk():
    return make_bulk()


@pytest.fixture(scope="module")
def compacted():
    return make_compacted()


SHAPES = [
    ("count", lambda t: t.where("v", between=(500, 15_000)).count("n")),
    ("sum", lambda t: t.where("v", between=(500, 15_000)).sum("w", "s")),
    ("avg", lambda t: t.where("v", between=(500, 15_000)).avg("w", "a")),
    ("minmax", lambda t: t.where("v", between=(500, 15_000))
        .min("w", "lo").max("w", "hi")),
    ("grouped", lambda t: t.where("v", between=(0, 25_000)).group_by("w")
        .count("n").avg("v", "a")),
    ("select", lambda t: t.where("v", between=(1_000, 5_000)).select("v", "w")),
]


@pytest.mark.parametrize("mode", ["ar", "classic", "approximate"])
@pytest.mark.parametrize("name,build", SHAPES, ids=[s[0] for s in SHAPES])
def test_compacted_equals_bulk(bulk, compacted, mode, name, build):
    a = build(compacted.table("fact")).run(mode=mode)
    b = build(bulk.table("fact")).run(mode=mode)
    assert_byte_identical(a, b, (name, mode))


@pytest.mark.parametrize("strategy", ["bruteforce", "sorted"])
@pytest.mark.parametrize("emit", ["pairs", "runs"])
@pytest.mark.parametrize("mode", ["ar", "classic"])
def test_compacted_theta_strategies(bulk, compacted, mode, strategy, emit):
    if strategy == "bruteforce" and emit == "runs":
        pytest.skip("bruteforce emits pairs only")

    def q(s):
        return (
            s.table("fact").where("v", between=(0, 6_000))
            .band_join("r", on=("v", "p"), delta=32,
                       strategy=strategy, emit=emit)
            .count("n").run(mode=mode)
        )

    assert_byte_identical(q(compacted), q(bulk), (mode, strategy, emit))


def test_compacted_identity_under_evicting_view_budget(bulk):
    """The invariant survives segment-granular view eviction: rebuild the
    compacted session with a starved budget in force the whole time."""
    set_view_budget(16_384, segment_rows=512)
    compacted = make_compacted()
    for name, build in SHAPES:
        for mode in ("ar", "classic"):
            a = build(compacted.table("fact")).run(mode=mode)
            b = build(bulk.table("fact")).run(mode=mode)
            assert_byte_identical(a, b, (name, mode, "evicting"))


def test_compaction_restores_storage_identity():
    bulk, compacted = make_bulk(), make_compacted()
    rb = bulk.catalog.table("fact")
    rc = compacted.catalog.table("fact")
    for col in rb.schema.names:
        assert np.array_equal(rb.values(col), rc.values(col))
        db = bulk.catalog.decomposition_of("fact", col)
        dc = compacted.catalog.decomposition_of("fact", col)
        assert db.decomposition == dc.decomposition
        assert np.array_equal(
            db.approx_codes_i64(), dc.approx_codes_i64()
        )


def test_sharded_compaction_matches_sharded_bulk():
    """4-shard: compaction rebuilds row maps, shard relations, band cuts
    and per-shard decompositions exactly as a bulk load would have."""
    bulk = make_sharded_bulk()
    compacted = make_sharded_compacted()
    assert compacted.shard_rows("fact") == bulk.shard_rows("fact")
    sb, sc = bulk.sharded_catalog, compacted.sharded_catalog
    assert sb.partition_columns == sc.partition_columns
    assert sb.band_cuts == sc.band_cuts
    for mb, mc in zip(sb.row_maps["fact"], sc.row_maps["fact"]):
        assert np.array_equal(mb, mc)
    for name, build in SHAPES:
        if name == "select":
            continue  # sharded execution rejects bare projections
        for mode in ("ar", "classic", "approximate"):
            a = build(compacted.table("fact")).run(mode=mode)
            b = build(bulk.table("fact")).run(mode=mode)
            assert_byte_identical(a, b, (name, mode, "sharded"))


def test_sharded_compaction_under_evicting_view_budget():
    bulk = make_sharded_bulk()
    bulk.set_view_budget(8_192, segment_rows=512)
    try:
        compacted = make_sharded_compacted()
        q = lambda s: (
            s.table("fact").where("v", between=(500, 15_000))
            .count("n").sum("w", "s").run(mode="ar")
        )
        assert_byte_identical(q(compacted), q(bulk), "sharded evicting")
    finally:
        set_view_budget(None)


def test_compact_all_tables_at_once():
    """session.compact() with no table folds every pending delta."""
    fact, right = _all_data()
    base, delta = _split(fact)
    s = Session()
    s.create_table("fact", {"v": IntType(), "w": IntType()}, base)
    s.create_table("r", {"p": IntType()}, right)
    s.bwdecompose("fact", "v", 24)
    s.bwdecompose("r", "p", 24)
    s.append("fact", delta)
    s.append("r", {"p": np.array([1, 2, 3], dtype=np.int64)})
    epoch = s.catalog.epoch
    assert s.compact() == D + 3
    assert s.catalog.tables_with_delta() == []
    assert s.catalog.epoch > epoch
