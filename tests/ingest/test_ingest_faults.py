"""Crash-during-compaction: copy-then-swap must leave no torn state.

Compaction builds everything off to the side and commits last; the
``repro.ingest.compact.fail_hook`` seam models a crash after the rebuild
but before any commit.  Afterwards the catalog epoch must be unchanged,
the delta still pending and queryable, and a retry must succeed cleanly —
on the single-device session, the 4-shard session, and under the serve
scheduler (whose write intent must clear and whose deferred writes must
flush even when the compaction it guarded raised).
"""

import numpy as np
import pytest

from repro import IntType, Session
from repro.ingest import compact as ingest_compact
from repro.shard import ShardedSession


class Boom(RuntimeError):
    pass


@pytest.fixture(autouse=True)
def clear_hook():
    yield
    ingest_compact.fail_hook = None


def make_session():
    rng = np.random.default_rng(13)
    s = Session()
    s.create_table(
        "t", {"v": IntType()},
        {"v": rng.integers(0, 10_000, 2_000).astype(np.int64)},
    )
    s.bwdecompose("t", "v", 24)
    s.append("t", {"v": np.arange(100, dtype=np.int64)})
    return s


def make_sharded():
    rng = np.random.default_rng(14)
    s = ShardedSession(4)
    s.create_table(
        "t", {"v": IntType()},
        {"v": rng.integers(0, 10_000, 2_000).astype(np.int64)},
    )
    s.bwdecompose("t", "v", 24)
    s.append("t", {"v": np.arange(100, dtype=np.int64)})
    return s


@pytest.mark.parametrize("factory", [make_session, make_sharded],
                         ids=["single", "sharded"])
def test_crash_leaves_epoch_and_delta_intact(factory):
    s = factory()
    before = s.table("t").where("v", between=(0, 50)).count("n").run()
    epoch = s.catalog.epoch

    def boom(table):
        raise Boom(f"crash compacting {table}")

    ingest_compact.fail_hook = boom
    with pytest.raises(Boom):
        s.compact("t")
    assert s.catalog.epoch == epoch, "no commit may have happened"
    assert s.catalog.delta_rows("t") == 100, "delta must survive the crash"
    after = s.table("t").where("v", between=(0, 50)).count("n").run()
    assert np.array_equal(before.columns["n"], after.columns["n"])

    # Recovery: clear the fault and retry; the fold completes normally.
    ingest_compact.fail_hook = None
    assert s.compact("t") == 100
    assert s.catalog.epoch == epoch + 1
    assert s.catalog.delta_rows("t") == 0
    settled = s.table("t").where("v", between=(0, 50)).count("n").run()
    assert np.array_equal(before.columns["n"], settled.columns["n"])


def test_sharded_crash_preserves_shard_state():
    s = make_sharded()
    sc = s.sharded_catalog
    maps_before = [m.copy() for m in sc.row_maps["t"]]

    ingest_compact.fail_hook = lambda t: (_ for _ in ()).throw(Boom(t))
    with pytest.raises(Boom):
        s.compact("t")
    for before, now in zip(maps_before, sc.row_maps["t"]):
        assert np.array_equal(before, now), "row maps must be untouched"


def test_scheduler_write_intent_survives_compaction_crash():
    """A crash inside the watermark compaction must still clear the write
    intent and flush writes that deferred behind it."""
    s = make_session()
    s.compact("t")
    server = s.serve(max_batch=4, delta_watermark=50)

    def boom(table):
        # While the intent is held, an arriving write must defer.
        n = server.submit_write("t", {"v": np.array([7], dtype=np.int64)})
        assert n == 0
        assert server.stats.deferred_writes == 1
        raise Boom(table)

    ingest_compact.fail_hook = boom
    server.submit_write("t", {"v": np.arange(60, dtype=np.int64)})
    h = s.table("t").where("v", between=(0, 50)).count("n").submit(server)
    with pytest.raises(Boom):
        server.drain()
    # The intent cleared and the deferred write flushed despite the crash.
    assert not server._write_intents
    assert server.stats.writes == 2
    assert s.catalog.delta_rows("t") == 61
    h.result()  # the read itself completed before the compaction ran

    ingest_compact.fail_hook = None
    assert s.compact("t") == 61
