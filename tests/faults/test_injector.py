"""Unit tests: fault profiles, the seeded injector, the circuit breaker."""

import pytest

from repro.device.memory import MemoryPool
from repro.errors import DeviceFailure, TransientAllocationError
from repro.faults import CircuitBreaker, FaultInjector, FaultProfile, RetryPolicy
from repro.faults.breaker import CLOSED, HALF_OPEN, OPEN


class TestFaultProfile:
    def test_defaults_are_healthy(self):
        p = FaultProfile()
        assert p.crash_shards == frozenset()
        assert p.flaky_first_k == 0
        assert p.transient_rate == 0.0

    @pytest.mark.parametrize("kw", [
        {"transient_rate": 1.5},
        {"straggler_rate": -0.1},
        {"alloc_fault_rate": 2.0},
        {"flaky_first_k": -1},
        {"straggler_factor": 0.5},
        {"alloc_pressure": 1.5},
    ])
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            FaultProfile(**kw)


class TestInjectorDeterminism:
    def test_same_seed_same_decisions(self):
        profile = FaultProfile(transient_rate=0.3, straggler_rate=0.2)

        def decisions(seed):
            inj = FaultInjector(profile, seed=seed)
            out = []
            for q in range(50):
                for s in range(4):
                    f = inj.begin_attempt(s, (q, s))
                    out.append((f.dispatch_error is not None, f.scale))
            return out

        assert decisions(7) == decisions(7)
        assert decisions(7) != decisions(8)

    def test_flaky_first_k_counts_per_fragment(self):
        inj = FaultInjector(FaultProfile(flaky_first_k=2))
        key = (1, 0)
        first = inj.begin_attempt(0, key)
        second = inj.begin_attempt(0, key)
        third = inj.begin_attempt(0, key)
        assert first.dispatch_error is not None
        assert second.dispatch_error is not None
        assert second.dispatch_error.transient
        assert third.dispatch_error is None
        # A different fragment key starts its own attempt count.
        assert inj.begin_attempt(0, (2, 0)).dispatch_error is not None

    def test_flaky_shards_restriction(self):
        inj = FaultInjector(
            FaultProfile(flaky_first_k=1, flaky_shards=frozenset({1}))
        )
        assert inj.begin_attempt(0, (1, 0)).dispatch_error is None
        assert inj.begin_attempt(1, (1, 1)).dispatch_error is not None

    def test_crash_restore(self):
        inj = FaultInjector(FaultProfile())
        assert inj.begin_attempt(2, (1, 2)).dispatch_error is None
        inj.crash(2)
        err = inj.begin_attempt(2, (2, 2)).dispatch_error
        assert isinstance(err, DeviceFailure)
        assert not err.transient
        assert err.shard_index == 2
        inj.restore(2)
        assert inj.begin_attempt(2, (3, 2)).dispatch_error is None

    def test_slow_next_is_one_shot(self):
        inj = FaultInjector(FaultProfile())
        inj.slow_next(0, 10.0)
        assert inj.begin_attempt(0, (1, 0)).scale == 10.0
        assert inj.begin_attempt(0, (2, 0)).scale == 1.0
        with pytest.raises(ValueError):
            inj.slow_next(0, 0.5)


class TestAllocHook:
    def test_fires_only_under_pressure(self):
        inj = FaultInjector(
            FaultProfile(alloc_fault_rate=1.0, alloc_pressure=0.5), seed=0
        )
        pool = MemoryPool("gpu0", 1000)
        inj.install([pool])
        pool.allocate("cold", 100)  # 10% utilization: below pressure
        with pytest.raises(TransientAllocationError):
            pool.allocate("hot", 500)  # 60%: the hook fires
        assert not pool.holds("hot")  # the failed allocation left no trace
        assert pool.allocated == 100

    def test_unbounded_pool_never_hiccups(self):
        inj = FaultInjector(
            FaultProfile(alloc_fault_rate=1.0, alloc_pressure=0.0)
        )
        pool = MemoryPool("host", None)
        inj.install([pool])
        pool.allocate("x", 10**9)  # no capacity, no pressure, no fault


class TestRetryPolicy:
    def test_backoff_is_exponential(self):
        p = RetryPolicy(backoff_base_seconds=0.001, backoff_multiplier=2.0)
        assert p.backoff_seconds(0) == pytest.approx(0.001)
        assert p.backoff_seconds(1) == pytest.approx(0.002)
        assert p.backoff_seconds(2) == pytest.approx(0.004)

    def test_validation(self):
        from repro.errors import PlanError

        with pytest.raises(PlanError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(PlanError):
            RetryPolicy(deadline_seconds=-1.0)


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        b = CircuitBreaker(failure_threshold=3, cooldown_queries=5)
        assert b.state == CLOSED
        b.record_failure(1)
        b.record_failure(2)
        assert b.state == CLOSED and b.allow(3)
        b.record_failure(3)
        assert b.state == OPEN and b.quarantined
        assert not b.allow(4)

    def test_success_resets_the_streak(self):
        b = CircuitBreaker(failure_threshold=2)
        b.record_failure(1)
        b.record_success()
        b.record_failure(2)
        assert b.state == CLOSED

    def test_half_open_probe_recovers(self):
        b = CircuitBreaker(failure_threshold=1, cooldown_queries=3)
        b.record_failure(1)
        assert b.state == OPEN
        assert not b.allow(2)  # cooling down
        assert b.allow(4)  # cooldown elapsed: one probe admitted
        assert b.state == HALF_OPEN
        assert not b.allow(4)  # no second fragment during the probe
        b.record_success()
        assert b.state == CLOSED and not b.quarantined

    def test_failed_probe_reopens(self):
        b = CircuitBreaker(failure_threshold=1, cooldown_queries=2)
        b.record_failure(1)
        assert b.allow(3)
        b.record_failure(3)
        assert b.state == OPEN
        assert not b.allow(4)  # a fresh cooldown started at the probe
        assert b.allow(5)
        assert b.opened_count == 2
