"""Transient faults must be invisible in the bytes: retried == fault-free.

The PR-7 acceptance pin: under transient-only faults (flaky-first-K with
K < max_attempts, seeded transient dispatch failures that retries absorb),
every query completes and its Result AND per-query Timeline are
byte-identical to the fault-free run — recovery is billed on the separate
recovery ledger, never on the clean one.  Property-tested across mode ×
strategy × emit shape and under an evicting per-shard view budget.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import IntType
from repro.faults import FaultProfile, RetryPolicy
from repro.shard import ShardedSession
from repro.storage.decompose import set_view_budget

N = 4_000
M = 300
DOMAIN = 40_000
N_SHARDS = 4


@pytest.fixture(autouse=True)
def restore_budget():
    yield
    set_view_budget(None)


def make_sharded():
    rng = np.random.default_rng(5)
    s = ShardedSession(N_SHARDS)
    s.create_table(
        "fact",
        {"v": IntType(), "w": IntType()},
        {
            "v": rng.integers(0, DOMAIN, N).astype(np.int64),
            "w": rng.integers(0, 30, N).astype(np.int64),
        },
    )
    s.create_table(
        "dim", {"p": IntType()},
        {"p": rng.integers(0, DOMAIN, M).astype(np.int64)},
        partition=False,
    )
    s.bwdecompose("fact", "v", 24)
    s.bwdecompose("fact", "w", 24)
    s.bwdecompose("dim", "p", 24)
    return s


@pytest.fixture(scope="module")
def healthy():
    return make_sharded()


@pytest.fixture(scope="module")
def flaky2():
    s = make_sharded()
    s.inject_faults(FaultProfile(flaky_first_k=2), seed=0)
    return s


def assert_identical(clean, faulty, msg=""):
    assert faulty.row_count == clean.row_count, msg
    assert faulty.columns.keys() == clean.columns.keys(), msg
    for k in clean.columns:
        assert np.array_equal(faulty.columns[k], clean.columns[k]), (msg, k)
    assert (
        faulty.timeline.span_tuples() == clean.timeline.span_tuples()
    ), msg


def scan_builder(s, lo, hi, grouped):
    b = (
        s.table("fact")
        .where("v", between=(lo, hi))
        .agg("sum", "v", alias="s")
        .count(alias="n")
    )
    return b.group_by("w") if grouped else b


class TestFlakyFirstTwoAcceptance:
    """The seeded flaky-first-2 profile of the acceptance criterion."""

    @pytest.mark.parametrize("mode", ["ar", "classic", "approximate"])
    @pytest.mark.parametrize("grouped", [False, True])
    def test_scan_result_and_ledger_identical(self, healthy, flaky2, mode, grouped):
        clean = scan_builder(healthy, 2_000, 30_000, grouped).run(mode=mode)
        faulty = scan_builder(flaky2, 2_000, 30_000, grouped).run(mode=mode)
        assert_identical(clean, faulty, f"{mode} grouped={grouped}")
        assert not faulty.degraded
        assert faulty.shard_coverage == 1.0
        assert faulty.dead_shards == []

    def test_retries_visibly_billed_on_combined_timeline(self, flaky2):
        faulty = scan_builder(flaky2, 0, DOMAIN, False).run()
        assert faulty.retries > 0
        assert faulty.recovery_seconds > 0.0
        backoffs = [
            sp for sp in faulty.combined_timeline().spans
            if sp.op.startswith("fault.retry.backoff")
        ]
        assert len(backoffs) == faulty.retries
        assert all(sp.phase == "recover" for sp in backoffs)
        # The clean ledger carries none of them.
        assert not any(
            sp.op.startswith("fault.retry.backoff")
            for sp in faulty.timeline.spans
        )
        # Recovery makes the modeled completion slower, never faster.
        assert faulty.wall_clock_seconds >= max(faulty.fragment_seconds)

    @pytest.mark.parametrize(
        "strategy,emit",
        [("auto", "auto"), ("sorted", "runs"), ("sorted", "pairs"),
         ("bruteforce", "pairs")],
    )
    @pytest.mark.parametrize("mode", ["ar", "classic"])
    def test_theta_identical_across_strategy_emit(
        self, healthy, flaky2, mode, strategy, emit
    ):
        def build(s):
            return (
                s.table("fact")
                .where("v", between=(0, 15_000))
                .theta_join(
                    "dim", on=("v", "p"), op="within", delta=40,
                    strategy=strategy, emit=emit,
                )
                .count(alias="n")
            )

        clean = build(healthy).run(mode=mode)
        faulty = build(flaky2).run(mode=mode)
        assert_identical(clean, faulty, f"{mode} {strategy} {emit}")


class TestTransientIdentityProperty:
    """Seeded random transient faults: whatever retries absorb is invisible."""

    @settings(
        max_examples=20, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        lo=st.integers(0, DOMAIN - 2_000),
        width=st.integers(500, 20_000),
        mode=st.sampled_from(["ar", "classic", "approximate"]),
        grouped=st.booleans(),
        fault_seed=st.integers(0, 10_000),
    )
    def test_scan_identity_under_transient_rate(
        self, lo, width, mode, grouped, fault_seed
    ):
        healthy = make_sharded()
        faulty_session = make_sharded()
        # Rate low enough that 4 attempts nearly always recover; the
        # generous deadline keeps backoff from tripping it early.
        faulty_session.inject_faults(
            FaultProfile(transient_rate=0.25), seed=fault_seed
        )
        hi = min(lo + width, DOMAIN)
        clean = scan_builder(healthy, lo, hi, grouped).run(mode=mode)
        faulty = scan_builder(faulty_session, lo, hi, grouped).run(mode=mode)
        if faulty.degraded:  # all 4 attempts failed somewhere: not this pin
            return
        assert_identical(clean, faulty, f"{mode} [{lo},{hi}] seed={fault_seed}")

    @settings(
        max_examples=8, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        budget_kb=st.sampled_from([2, 8, 32]),
        fault_seed=st.integers(0, 1_000),
        strategy_emit=st.sampled_from(
            [("auto", "auto"), ("sorted", "runs"), ("sorted", "pairs")]
        ),
    )
    def test_identity_survives_evicting_view_budget(
        self, budget_kb, fault_seed, strategy_emit
    ):
        strategy, emit = strategy_emit

        def build(s):
            return (
                s.table("fact")
                .where("v", between=(0, 12_000))
                .theta_join(
                    "dim", on=("v", "p"), op="within", delta=32,
                    strategy=strategy, emit=emit,
                )
                .count(alias="n")
            )

        try:
            healthy = make_sharded()
            healthy.set_view_budget(budget_kb * 1024, segment_rows=512)
            clean = build(healthy).run()
            faulty_session = make_sharded()
            faulty_session.set_view_budget(budget_kb * 1024, segment_rows=512)
            faulty_session.inject_faults(
                FaultProfile(flaky_first_k=2), seed=fault_seed
            )
            faulty = build(faulty_session).run()
        finally:
            set_view_budget(None)
        assert_identical(
            clean, faulty, f"budget={budget_kb}k {strategy}/{emit}"
        )
        assert faulty.retries > 0
