"""Crash faults: graceful degradation with sound bounds; breaker lifecycle.

The second PR-7 acceptance pin: with one shard of four permanently down,
at least 95% of a mixed scan/theta workload returns ``degraded=True``
answers whose exact ungrouped-count intervals are sound — zero hangs,
zero unflagged wrong answers.  Plus the hedging and straggler story and
the circuit breaker's quarantine/probe integration with serving.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import IntType
from repro.errors import DeviceFailure
from repro.faults import FaultProfile, RetryPolicy
from repro.serve import handles
from repro.shard import ShardedSession

N = 8_000
M = 400
DOMAIN = 80_000
N_SHARDS = 4


def make_sharded(retry_policy=None, seed=9):
    rng = np.random.default_rng(seed)
    s = ShardedSession(N_SHARDS, retry_policy=retry_policy)
    s.create_table(
        "fact",
        {"v": IntType(), "w": IntType()},
        {
            "v": rng.integers(0, DOMAIN, N).astype(np.int64),
            "w": rng.integers(0, 30, N).astype(np.int64),
        },
    )
    s.create_table(
        "dim", {"p": IntType()},
        {"p": rng.integers(0, DOMAIN, M).astype(np.int64)},
        partition=False,
    )
    s.bwdecompose("fact", "v", 24)
    s.bwdecompose("dim", "p", 24)
    return s


def wide_count(s, lo, hi):
    return s.table("fact").where("v", between=(lo, hi)).count(alias="n")


def theta_count(s, lo, hi):
    return (
        s.table("fact")
        .where("v", between=(lo, hi))
        .theta_join("dim", on=("v", "p"), op="within", delta=64)
        .count(alias="n")
    )


#: Wide windows (≥ half the domain) so every query straddles the dead
#: shard's code band instead of pruning around it.
WINDOWS = [
    (0, DOMAIN // 2), (DOMAIN // 4, 3 * DOMAIN // 4),
    (DOMAIN // 2, DOMAIN), (DOMAIN // 8, 7 * DOMAIN // 8), (0, DOMAIN),
]


class TestDegradedSoundness:
    def test_scan_count_interval_brackets_truth(self):
        healthy = make_sharded()
        crashed = make_sharded()
        crashed.inject_faults(FaultProfile(crash_shards=frozenset({1})))
        for lo, hi in WINDOWS:
            truth = wide_count(healthy, lo, hi).run().scalar("n")
            r = wide_count(crashed, lo, hi).run()
            assert r.degraded
            assert 0.0 < r.shard_coverage < 1.0
            assert r.dead_shards == [1]
            iv = r.approximate.aggregates["n"]
            assert iv.lo <= truth <= iv.hi, (lo, hi)
            # The survivors' exact count is the certain lower bound.
            assert iv.lo == r.scalar("n")

    def test_theta_count_interval_brackets_truth(self):
        healthy = make_sharded()
        crashed = make_sharded()
        crashed.inject_faults(FaultProfile(crash_shards=frozenset({2})))
        for lo, hi in WINDOWS:
            truth = theta_count(healthy, lo, hi).run().scalar("n")
            r = theta_count(crashed, lo, hi).run()
            if not r.degraded:
                continue  # window missed the dead band: exact, fine
            iv = r.approximate.aggregates["n"]
            assert iv.lo <= truth <= iv.hi, (lo, hi)

    def test_all_shards_dead_raises_not_hangs(self):
        crashed = make_sharded()
        crashed.inject_faults(
            FaultProfile(crash_shards=frozenset(range(N_SHARDS)))
        )
        with pytest.raises(DeviceFailure):
            wide_count(crashed, 0, DOMAIN).run()

    def test_degraded_coverage_matches_row_split(self):
        crashed = make_sharded()
        crashed.inject_faults(FaultProfile(crash_shards=frozenset({0})))
        rows = crashed.shard_rows("fact")
        r = wide_count(crashed, 0, DOMAIN).run()
        assert r.shard_coverage == pytest.approx(
            (sum(rows) - rows[0]) / sum(rows)
        )

    @settings(
        max_examples=15, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        dead=st.integers(0, N_SHARDS - 1),
        lo=st.integers(0, DOMAIN // 2),
        width=st.integers(DOMAIN // 2, DOMAIN),
    )
    def test_crash_interval_soundness_property(self, dead, lo, width):
        healthy = make_sharded()
        crashed = make_sharded()
        crashed.inject_faults(FaultProfile(crash_shards=frozenset({dead})))
        hi = min(lo + width, DOMAIN)
        truth = wide_count(healthy, lo, hi).run().scalar("n")
        r = wide_count(crashed, lo, hi).run()
        if not r.degraded:
            assert r.scalar("n") == truth
            return
        iv = r.approximate.aggregates["n"]
        assert iv.lo <= truth <= iv.hi


class TestAcceptanceNinetyFivePercent:
    def test_mixed_workload_mostly_degraded_never_wrong(self):
        healthy = make_sharded()
        crashed = make_sharded()
        crashed.inject_faults(FaultProfile(crash_shards=frozenset({1})))
        outcomes = []
        for lo, hi in WINDOWS * 2:
            for build, kind in ((wide_count, "scan"), (theta_count, "theta")):
                truth = build(healthy, lo, hi).run().scalar("n")
                r = build(crashed, lo, hi).run()  # completes: no hangs
                outcomes.append(r.degraded)
                if r.degraded:
                    iv = r.approximate.aggregates["n"]
                    assert iv.lo <= truth <= iv.hi, (kind, lo, hi)
                else:
                    # Unflagged answers must be exactly right (the dead
                    # shard was pruned or held no qualifying rows).
                    assert r.scalar("n") == truth, (kind, lo, hi)
        assert sum(outcomes) / len(outcomes) >= 0.95


class TestStragglersAndHedging:
    def test_hedge_restores_ledger_identity(self):
        healthy = make_sharded()
        slow = make_sharded()
        inj = slow.inject_faults(FaultProfile())
        inj.slow_next(3, 50.0)
        clean = wide_count(healthy, 0, DOMAIN).run()
        hedged = wide_count(slow, 0, DOMAIN).run()
        assert hedged.hedged_shards == [3]
        assert (
            hedged.timeline.span_tuples() == clean.timeline.span_tuples()
        )
        assert hedged.recovery_seconds > 0.0  # the loser attempt is billed
        # Completion beats waiting out the straggler by a wide margin.
        assert hedged.wall_clock_seconds < 50.0 * clean.wall_clock_seconds / 2

    def test_hedging_disabled_keeps_slow_ledger(self):
        slow = make_sharded(retry_policy=RetryPolicy(hedge=False))
        inj = slow.inject_faults(FaultProfile())
        inj.slow_next(3, 50.0)
        r = wide_count(slow, 0, DOMAIN).run()
        assert r.hedged_shards == []
        healthy = make_sharded()
        clean = wide_count(healthy, 0, DOMAIN).run()
        assert r.wall_clock_seconds > clean.wall_clock_seconds

    def test_straggler_scale_multiplies_recorded_seconds(self):
        slow = make_sharded(retry_policy=RetryPolicy(hedge=False))
        inj = slow.inject_faults(FaultProfile())
        healthy = make_sharded()
        clean = wide_count(healthy, 0, DOMAIN).run()
        inj.slow_next(0, 7.0)
        r = wide_count(slow, 0, DOMAIN).run()
        assert r.fragment_seconds[0] == pytest.approx(
            7.0 * clean.fragment_seconds[0]
        )
        assert r.fragment_seconds[1:] == pytest.approx(
            clean.fragment_seconds[1:]
        )


class TestBreakerServingIntegration:
    def test_quarantined_shard_leaves_admission_headroom(self):
        s = make_sharded()
        inj = s.inject_faults(FaultProfile())
        inj.crash(2)
        threshold = s.executor._breaker(2).failure_threshold
        for _ in range(threshold):
            wide_count(s, 0, DOMAIN).run()
        assert s.executor.quarantined_shards() == {2}
        with s.serve() as server:
            # The dead pool is excluded from the min-headroom computation.
            healthy_headrooms = [
                shard.machine.gpu.pool.headroom(1.0)
                for shard in s.sharded_catalog.shards
                if shard.index != 2
            ]
            bounded = [h for h in healthy_headrooms if h is not None]
            assert server._min_shard_headroom() == (
                min(bounded) if bounded else None
            )
            h = server.submit(wide_count(s, 0, DOMAIN))
            r = h.result()
            assert r.degraded and h.state == handles.DEGRADED
            assert server.stats.degraded == 1

    def test_breaker_fast_fails_without_retry_budget(self):
        s = make_sharded()
        inj = s.inject_faults(FaultProfile())
        inj.crash(1)
        threshold = s.executor._breaker(1).failure_threshold
        burned = [wide_count(s, 0, DOMAIN).run().retries for _ in range(threshold)]
        assert all(r > 0 for r in burned)  # closed breaker pays retries
        post = wide_count(s, 0, DOMAIN).run()
        assert post.retries == 0  # open breaker: skip instantly
        assert post.degraded

    def test_probe_recovers_after_restore(self):
        s = make_sharded()
        inj = s.inject_faults(FaultProfile())
        inj.crash(3)
        breaker = s.executor._breaker(3)
        for _ in range(breaker.failure_threshold):
            wide_count(s, 0, DOMAIN).run()
        assert breaker.quarantined
        inj.restore(3)
        for _ in range(breaker.cooldown_queries + 1):
            r = wide_count(s, 0, DOMAIN).run()
        assert breaker.state == "closed"
        assert not r.degraded
        healthy = make_sharded()
        clean = wide_count(healthy, 0, DOMAIN).run()
        assert r.timeline.span_tuples() == clean.timeline.span_tuples()
        assert r.scalar("n") == clean.scalar("n")
