"""SQL front-end coverage for theta/band joins (PR 4).

``JOIN t ON a <op> b`` and ``JOIN t ON a WITHIN d OF b`` flow through
lexer → parser → binder → plan → all three execution modes; the equality
form falls back from the FK join to a theta join when the right-side key is
not dense.
"""

import numpy as np
import pytest

from repro.core.theta import Theta, ThetaOp, theta_join_reference
from repro.engine.session import Session
from repro.errors import SqlError, SqlSyntaxError
from repro.plan.logical import ThetaJoin
from repro.sql import bind, parse
from repro.sql.ast import JoinClause, ThetaJoinClause
from repro.storage.column import DecimalType, IntType


@pytest.fixture()
def session():
    s = Session()
    rng = np.random.default_rng(5)
    s.create_table(
        "orders",
        {"price": IntType(), "qty": IntType()},
        {
            "price": rng.integers(0, 4000, 600),
            "qty": rng.integers(0, 8, 600),
        },
    )
    s.create_table(
        "quotes", {"price": IntType()}, {"price": rng.integers(0, 4000, 200)}
    )
    s.bwdecompose("orders", "price", residual_bits=4)
    s.bwdecompose("quotes", "price", residual_bits=4)
    return s


class TestParser:
    def test_within_of_parses_to_theta_clause(self):
        stmt = parse(
            "select count(*) as n from orders "
            "join quotes on orders.price within 25 of quotes.price"
        )
        assert stmt.joins == (
            ThetaJoinClause(
                table="quotes", left="orders.price", op="within",
                right="quotes.price", delta_text="25",
            ),
        )

    def test_inequality_parses_and_normalizes_sides(self):
        stmt = parse(
            "select count(*) as n from orders "
            "join quotes on quotes.price < orders.price"
        )
        # quotes.price < orders.price  ⇔  orders.price > quotes.price
        assert stmt.joins == (
            ThetaJoinClause(
                table="quotes", left="orders.price", op=">",
                right="quotes.price",
            ),
        )

    def test_equality_still_parses_as_join_clause(self):
        stmt = parse(
            "select count(*) as n from orders join dim on orders.fk = dim.id"
        )
        assert stmt.joins == (
            JoinClause(dim_table="dim", fk_column="orders.fk", dim_key="id"),
        )

    def test_within_requires_of(self):
        with pytest.raises(SqlSyntaxError):
            parse(
                "select count(*) from orders "
                "join quotes on orders.price within 25 quotes.price"
            )

    def test_theta_must_reference_joined_table_once(self):
        with pytest.raises(SqlSyntaxError):
            parse(
                "select count(*) from orders "
                "join quotes on orders.price < orders.qty"
            )

    def test_unsupported_join_comparison(self):
        with pytest.raises(SqlSyntaxError):
            parse(
                "select count(*) from orders "
                "join quotes on orders.price <> quotes.price"
            )


class TestBinder:
    def test_binds_theta_join_node(self, session):
        stmt = parse(
            "select count(*) as n from orders "
            "join quotes on orders.price within 25 of quotes.price"
        )
        query, _ = bind(stmt, session.catalog)
        assert query.theta_joins == (
            ThetaJoin("price", "quotes", "price", "within", 25),
        )

    def test_non_dense_equality_falls_back_to_theta(self, session):
        """``ON a = b`` against a non-key column is a theta equality join,
        not an error — the join algebra is closed."""
        stmt = parse(
            "select count(*) as n from orders "
            "join quotes on orders.price = quotes.price"
        )
        query, _ = bind(stmt, session.catalog)
        assert query.joins == ()
        assert query.theta_joins == (
            ThetaJoin("price", "quotes", "price", "="),
        )

    def test_delta_rescales_to_decimal_columns(self):
        s = Session()
        s.create_table(
            "l", {"v": DecimalType(12, 2)}, {"v": [1.00, 2.50, 10.00]}
        )
        s.create_table(
            "r", {"v": DecimalType(12, 2)}, {"v": [1.20, 7.00]}
        )
        stmt = parse(
            "select count(*) as n from l join r on l.v within 0.25 of r.v"
        )
        query, _ = bind(stmt, s.catalog)
        assert query.theta_joins[0].delta == 25  # scaled integer domain

    def test_scale_mismatch_rejected(self):
        s = Session()
        s.create_table("l", {"v": DecimalType(12, 2)}, {"v": [1.00]})
        s.create_table("r", {"v": IntType()}, {"v": [1]})
        stmt = parse("select count(*) as n from l join r on l.v < r.v")
        with pytest.raises(SqlError):
            bind(stmt, s.catalog)

    def test_right_side_column_references_rejected(self, session):
        stmt = parse(
            "select count(*) as n from orders "
            "join quotes on orders.price < quotes.price "
            "where quotes.price <= 10"
        )
        with pytest.raises(SqlError):
            bind(stmt, session.catalog)

    def test_unknown_columns_rejected(self, session):
        stmt = parse(
            "select count(*) as n from orders "
            "join quotes on orders.nope < quotes.price"
        )
        with pytest.raises(SqlError):
            bind(stmt, session.catalog)


class TestEndToEnd:
    SQL = (
        "select qty, count(*) as n, sum(price) as total from orders "
        "join quotes on orders.price within 30 of quotes.price "
        "where price between 300 and 3500 group by qty"
    )

    def oracle(self, session):
        left = session.catalog.table("orders").values("price")
        right = session.catalog.table("quotes").values("price")
        qty = session.catalog.table("orders").values("qty")
        pairs = theta_join_reference(left, right, Theta(ThetaOp.WITHIN, 30))
        keep = (left[pairs.left_positions] >= 300) & (
            left[pairs.left_positions] <= 3500
        )
        pairs = pairs.narrowed(keep)
        return left, qty, pairs

    def test_sql_three_mode_round_trip(self, session):
        """Band join + selection + grouped aggregate: ar == classic, both
        match the brute-force oracle; approximate mode runs free."""
        ar = session.execute(self.SQL, mode="ar").sorted_by("qty")
        classic = session.execute(self.SQL, mode="classic").sorted_by("qty")
        for col in ("qty", "n", "total"):
            assert np.array_equal(ar.column(col), classic.column(col)), col

        left, qty, pairs = self.oracle(session)
        pair_qty = qty[pairs.left_positions]
        pair_price = left[pairs.left_positions]
        keys = np.unique(pair_qty)
        assert np.array_equal(ar.column("qty"), keys)
        for i, key in enumerate(keys):
            sel = pair_qty == key
            assert ar.column("n")[i] == int(sel.sum())
            assert ar.column("total")[i] == int(pair_price[sel].sum())

        approx = session.execute(self.SQL, mode="approximate")
        assert approx.approximate.candidate_rows >= len(pairs)

    def test_sql_matches_builder(self, session):
        """The SQL text and the fluent builder express the same block."""
        sql_result = session.execute(self.SQL, mode="ar").sorted_by("qty")
        built = (
            session.table("orders")
            .where("price", between=(300, 3500))
            .band_join("quotes", on="price", delta=30)
            .group_by("qty")
            .count("n")
            .sum("price", "total")
            .run(mode="ar")
            .sorted_by("qty")
        )
        for col in ("qty", "n", "total"):
            assert np.array_equal(sql_result.column(col), built.column(col))

    def test_explain_renders_theta_operators(self, session):
        stmt = parse(self.SQL)
        query, _ = bind(stmt, session.catalog)
        text = session.explain(query)
        assert "bwd.thetajoinapproximate" in text
        assert "bwd.ship(pairs)" in text
        assert "bwd.thetajoinrefine" in text
        assert "PCI-E" in text
