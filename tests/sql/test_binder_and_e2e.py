"""Tests for the SQL binder and SQL-to-result round trips."""

import numpy as np
import pytest

from repro import (
    DateType,
    DecimalType,
    DictionaryType,
    IntType,
    OrderedDictionary,
    Session,
    SqlError,
)


@pytest.fixture()
def session():
    s = Session()
    rng = np.random.default_rng(0)
    n = 3_000
    p_types = OrderedDictionary(
        ["ECONOMY BRASS", "PROMO BRUSHED", "PROMO PLATED", "STANDARD TIN"]
    )
    s.create_table(
        "lineitem",
        {
            "quantity": IntType(),
            "price": DecimalType(10, 2),
            "discount": DecimalType(4, 2),
            "shipdate": DateType(),
            "partkey": IntType(),
        },
        {
            "quantity": rng.integers(1, 51, n),
            "price": rng.uniform(10, 1000, n).round(2),
            "discount": rng.integers(0, 11, n) / 100.0,
            "shipdate": rng.integers(8036, 10561, n),  # 1992..1998 day numbers
            "partkey": rng.integers(0, 8, n),
        },
    )
    s.create_table(
        "part",
        {"key": IntType(), "p_type": DictionaryType(dictionary=p_types)},
        {
            "key": np.arange(8),
            "p_type": [p_types.values[i % 4] for i in range(8)],
        },
    )
    for col, bits in [("quantity", 32), ("price", 16), ("discount", 32),
                      ("shipdate", 24), ("partkey", 32)]:
        s.bwdecompose("lineitem", col, bits)
    s.bwdecompose("part", "p_type", 32)
    return s


class TestBinding:
    def test_decimal_literal_scaled(self, session):
        r_ar = session.execute(
            "select count(*) from lineitem where discount between 0.05 and 0.07"
        )
        r_classic = session.execute(
            "select count(*) from lineitem where discount between 0.05 and 0.07",
            mode="classic",
        )
        assert r_ar.scalar("count_0") == r_classic.scalar("count_0") > 0

    def test_date_literal_encoded(self, session):
        sql = "select count(*) from lineitem where shipdate >= '1995-01-01'"
        assert session.execute(sql).scalar("count_0") == session.execute(
            sql, mode="classic"
        ).scalar("count_0")

    def test_like_prefix_becomes_range(self, session):
        sql = (
            "select count(*) from lineitem "
            "join part on lineitem.partkey = part.key "
            "where part.p_type like 'PROMO%'"
        )
        assert session.execute(sql).scalar("count_0") == session.execute(
            sql, mode="classic"
        ).scalar("count_0")

    def test_string_equality_via_dictionary(self, session):
        sql = (
            "select count(*) from lineitem "
            "join part on lineitem.partkey = part.key "
            "where part.p_type = 'STANDARD TIN'"
        )
        assert session.execute(sql).scalar("count_0") == session.execute(
            sql, mode="classic"
        ).scalar("count_0")

    def test_scale_unification_in_arithmetic(self, session):
        # price(scale 2) * (1 - discount(scale 2)): literal 1 → 100
        sql = "select sum(price * (1 - discount)) as rev from lineitem"
        result = session.execute(sql)
        classic = session.execute(sql, mode="classic")
        assert result.scalar("rev") == classic.scalar("rev")
        assert result.decimal_scales["rev"] == 4  # 2 + 2
        assert result.decoded("rev")[0] == result.scalar("rev") / 10**4

    def test_ne_predicate(self, session):
        sql = "select count(*) from lineitem where quantity <> 25"
        assert session.execute(sql).scalar("count_0") == session.execute(
            sql, mode="classic"
        ).scalar("count_0")

    def test_reversed_comparison(self, session):
        a = session.execute("select count(*) from lineitem where 25 > quantity")
        b = session.execute("select count(*) from lineitem where quantity < 25")
        assert a.scalar("count_0") == b.scalar("count_0")

    def test_group_by_with_key_output(self, session):
        sql = "select quantity, count(*) as n from lineitem group by quantity"
        ar = session.execute(sql).sorted_by("quantity")
        classic = session.execute(sql, mode="classic").sorted_by("quantity")
        assert np.array_equal(ar.column("quantity"), classic.column("quantity"))
        assert np.array_equal(ar.column("n"), classic.column("n"))

    def test_case_when_q14_shape(self, session):
        sql = (
            "select sum(case when part.p_type like 'PROMO%' "
            "then price * (1 - discount) else 0 end) as promo, "
            "sum(price * (1 - discount)) as total "
            "from lineitem join part on lineitem.partkey = part.key "
            "where shipdate between '1995-09-01' and '1995-09-30'"
        )
        ar = session.execute(sql)
        classic = session.execute(sql, mode="classic")
        assert ar.scalar("promo") == classic.scalar("promo")
        assert ar.scalar("total") == classic.scalar("total")

    def test_bwdecompose_statement(self, session):
        result = session.execute("select bwdecompose(quantity, 26) from lineitem")
        assert result.row_count == 0
        bwd = session.catalog.decomposition_of("lineitem", "quantity")
        assert bwd.decomposition.residual_bits == 6


class TestBinderErrors:
    def test_unknown_column(self, session):
        with pytest.raises(SqlError):
            session.execute("select nope from lineitem")

    def test_unknown_table(self, session):
        with pytest.raises(Exception):
            session.execute("select a from nope")

    def test_unjoined_dim_reference(self, session):
        with pytest.raises(SqlError):
            session.execute("select count(*) from lineitem where part.p_type = 'X'")

    def test_naked_column_next_to_aggregate(self, session):
        with pytest.raises(SqlError):
            session.execute("select quantity, count(*) from lineitem")

    def test_string_on_numeric_column(self, session):
        with pytest.raises(SqlError):
            session.execute("select count(*) from lineitem where quantity = 'x'")

    def test_literal_finer_than_scale(self, session):
        with pytest.raises(SqlError):
            session.execute(
                "select count(*) from lineitem where discount > 0.051"
            )

    def test_unknown_dictionary_string(self, session):
        with pytest.raises(SqlError):
            session.execute(
                "select count(*) from lineitem "
                "join part on lineitem.partkey = part.key "
                "where part.p_type = 'NO SUCH TYPE'"
            )

    def test_like_on_non_dictionary(self, session):
        with pytest.raises(SqlError):
            session.execute(
                "select count(*) from lineitem where quantity like '1%'"
            )

    def test_infix_pattern_rejected(self, session):
        with pytest.raises(SqlError):
            session.execute(
                "select count(*) from lineitem "
                "join part on lineitem.partkey = part.key "
                "where part.p_type like '%BRASS'"
            )

    def test_literal_vs_literal_rejected(self, session):
        with pytest.raises(SqlError):
            session.execute("select count(*) from lineitem where 1 = 1")

    def test_non_dense_join_key_binds_as_theta_equality(self, session):
        """PR 4: ``ON a = b`` against a non-dense key is no longer an
        error — it falls back to a theta equality join (the FK fast path
        still requires the paper's dense 0..N-1 index)."""
        session.create_table(
            "sparse_dim", {"key": IntType(), "v": IntType()},
            {"key": [3, 9, 17], "v": [1, 2, 3]},
        )
        session.bwdecompose("sparse_dim", "key", 32)
        result = session.execute(
            "select count(*) as n from lineitem "
            "join sparse_dim on lineitem.partkey = sparse_dim.key"
        )
        partkey = session.catalog.table("lineitem").values("partkey")
        keys = session.catalog.table("sparse_dim").values("key")
        truth = int((partkey[:, None] == keys[None, :]).sum())
        assert result.scalar("n") == truth


class TestApproximateAnswersViaSql:
    def test_bounds_bracket_truth(self, session):
        sql = (
            "select sum(price) as s, count(*) as n from lineitem "
            "where shipdate >= '1996-01-01'"
        )
        approx = session.execute(sql, mode="approximate")
        classic = session.execute(sql, mode="classic")
        for alias in ("s", "n"):
            bound = approx.approximate.bound(alias)
            assert bound.lo <= classic.scalar(alias) <= bound.hi

    def test_approximate_is_cheaper_than_full(self, session):
        sql = "select count(*) from lineitem where shipdate >= '1996-01-01'"
        approx = session.execute(sql, mode="approximate")
        full = session.execute(sql)
        assert approx.timeline.total_seconds() < full.timeline.total_seconds()
