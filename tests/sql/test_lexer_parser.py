"""Tests for the SQL lexer and parser."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql import ast
from repro.sql.lexer import tokenize
from repro.sql.parser import parse


class TestLexer:
    def test_keywords_case_insensitive(self):
        toks = tokenize("SELECT Sum FROM t")
        assert [t.kind for t in toks] == ["kw", "kw", "kw", "ident", "eof"]
        assert toks[0].text == "select"

    def test_numbers_and_floats(self):
        toks = tokenize("12 3.45 0.07")
        assert [t.text for t in toks[:-1]] == ["12", "3.45", "0.07"]
        assert all(t.kind == "number" for t in toks[:-1])

    def test_qualified_name_is_three_tokens(self):
        toks = tokenize("part.p_type")
        assert [t.kind for t in toks[:-1]] == ["ident", "op", "ident"]

    def test_strings(self):
        toks = tokenize("'PROMO%' '1995-03-15'")
        assert toks[0] == toks[0].__class__("string", "PROMO%", 0)
        assert toks[1].text == "1995-03-15"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("select 'oops")

    def test_multichar_operators(self):
        toks = tokenize("<= >= <> != =")
        assert [t.text for t in toks[:-1]] == ["<=", ">=", "<>", "!=", "="]

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("select @")


class TestParserSelect:
    def test_simple_select(self):
        stmt = parse("select a, b from t")
        assert isinstance(stmt, ast.SelectStmt)
        assert stmt.table == "t"
        assert [i.expr.name for i in stmt.items] == ["a", "b"]

    def test_count_star_and_alias(self):
        stmt = parse("select count(*) as n from t")
        item = stmt.items[0]
        assert isinstance(item.expr, ast.AggCall)
        assert item.expr.func == "count" and item.expr.argument is None
        assert item.alias == "n"

    def test_aggregates_with_expressions(self):
        stmt = parse("select sum(price * (1 - disc)) from t")
        agg = stmt.items[0].expr
        assert agg.func == "sum"
        assert isinstance(agg.argument, ast.Arith) and agg.argument.op == "*"

    def test_sum_star_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("select sum(*) from t")

    def test_where_conjunction(self):
        stmt = parse("select a from t where a > 5 and b between 1 and 9 and c = 2")
        assert len(stmt.where) == 3
        assert isinstance(stmt.where[0], ast.Compare)
        assert isinstance(stmt.where[1], ast.Between)

    def test_group_by(self):
        stmt = parse("select flag, count(*) from t group by flag, status")
        assert stmt.group_by == ("flag", "status")

    def test_join_clause(self):
        stmt = parse(
            "select count(*) from lineitem join part on lineitem.partkey = part.key"
        )
        (join,) = stmt.joins
        assert join.dim_table == "part"
        assert join.fk_column == "lineitem.partkey"
        assert join.dim_key == "key"

    def test_join_sides_may_swap(self):
        stmt = parse("select count(*) from f join d on d.key = f.fk")
        (join,) = stmt.joins
        assert join.fk_column == "f.fk" and join.dim_key == "key"

    def test_join_must_mention_dim(self):
        with pytest.raises(SqlSyntaxError):
            parse("select count(*) from f join d on f.a = f.b")

    def test_like_predicate(self):
        stmt = parse("select count(*) from part where p_type like 'PROMO%'")
        (pred,) = stmt.where
        assert isinstance(pred, ast.Like)
        assert pred.pattern == "PROMO%"

    def test_case_when(self):
        stmt = parse(
            "select sum(case when kind = 1 then price else 0 end) from t"
        )
        arg = stmt.items[0].expr.argument
        assert isinstance(arg, ast.CaseWhen)
        assert isinstance(arg.condition, ast.Compare)

    def test_unary_minus(self):
        stmt = parse("select a from t where a > -5")
        pred = stmt.where[0]
        assert isinstance(pred.right, ast.Negate)

    def test_precedence_mul_over_add(self):
        stmt = parse("select sum(a + b * c) from t")
        arg = stmt.items[0].expr.argument
        assert arg.op == "+"
        assert isinstance(arg.right, ast.Arith) and arg.right.op == "*"

    def test_parentheses(self):
        stmt = parse("select sum((a + b) * c) from t")
        arg = stmt.items[0].expr.argument
        assert arg.op == "*"

    def test_division_rejected_with_hint(self):
        with pytest.raises(SqlSyntaxError, match="ratio"):
            parse("select sum(a / b) from t")

    def test_trailing_garbage(self):
        with pytest.raises(SqlSyntaxError):
            parse("select a from t limit 5")

    def test_bwdecompose(self):
        stmt = parse("select bwdecompose(lon, 24) from trips")
        assert isinstance(stmt, ast.BwDecompose)
        assert (stmt.table, stmt.column, stmt.device_bits) == ("trips", "lon", 24)

    def test_bwdecompose_rejects_float_bits(self):
        with pytest.raises(SqlSyntaxError):
            parse("select bwdecompose(lon, 2.4) from trips")
