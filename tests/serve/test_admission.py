"""Bounded admission: fail-fast rejection, queue timeout, cancellation."""

import numpy as np
import pytest

from repro import IntType, Session
from repro.device.machine import Machine
from repro.device.model import DeviceSpec
from repro.errors import AdmissionError, PlanError
from repro.serve import AdmissionPolicy
from repro.serve.handles import CancelledError


def tiny_gpu_session(n=20_000, capacity=100_000, seed=0) -> Session:
    spec = DeviceSpec(
        name="tiny-gpu", kind="gpu",
        memory_capacity=capacity,
        seq_bandwidth=150e9, random_bandwidth=20e9, launch_overhead=5e-6,
    )
    s = Session(Machine(gpu_spec=spec))
    rng = np.random.default_rng(seed)
    s.create_table(
        "f", {"a": IntType()}, {"a": rng.integers(0, n, n)}
    )
    s.create_table(
        "r", {"v": IntType()}, {"v": rng.integers(0, n, n // 4)}
    )
    s.bwdecompose("f", "a", 24)
    s.bwdecompose("r", "v", 24)
    return s


class TestFailFastRejection:
    def test_oversized_query_rejected_at_submit(self):
        # The theta estimate is (|left| + |right|) * 8 = 200k bytes — more
        # than the whole 100k pool could ever offer.
        s = tiny_gpu_session()
        server = s.serve()
        with pytest.raises(AdmissionError):
            server.submit(
                s.table("f").band_join("r", on=("a", "v"), delta=5).count("n")
            )
        assert server.stats.rejected == 1
        assert server.stats.submitted == 0  # never entered the queue

    def test_fitting_query_still_admitted(self):
        s = tiny_gpu_session()
        server = s.serve()
        h = server.submit(s.table("f").where("a", between=(0, 50)).count("n"))
        assert h.result().scalar("n") >= 0
        assert server.stats.rejected == 0

    def test_unbounded_pool_never_rejects(self):
        rng = np.random.default_rng(1)
        s = Session()  # default machine: classic mode targets the host
        s.create_table("f", {"a": IntType()}, {"a": rng.integers(0, 100, 100)})
        s.bwdecompose("f", "a", 8)
        server = s.serve()
        h = server.submit(s.table("f").count("n"), mode="classic")
        assert h.result().scalar("n") == 100


class TestAdmissionTimeout:
    def test_stale_queries_expire_with_admission_error(self):
        s = tiny_gpu_session()
        server = s.serve(max_batch=1, admission_timeout_batches=2)
        a = server.submit(s.table("f").where("a", between=(0, 9)).count("n"))
        b = server.submit(s.table("f").where("a", between=(10, 19)).count("n"))
        c = server.submit(s.table("f").where("a", between=(20, 29)).count("n"))
        # Batch width 1: each drained batch runs one query.  b is admitted
        # after waiting one batch (within the 2-batch bound); c would have
        # to wait two and expires instead.
        server.drain()
        assert a.state == "done"
        assert b.state == "done"
        assert c.state == "failed"
        with pytest.raises(AdmissionError):
            c.result()
        assert server.stats.expired == 1

    def test_no_timeout_waits_indefinitely(self):
        s = tiny_gpu_session()
        server = s.serve(max_batch=1)
        hs = [
            server.submit(
                s.table("f").where("a", between=(i * 10, i * 10 + 9)).count("n")
            )
            for i in range(5)
        ]
        server.drain()
        assert all(h.state == "done" for h in hs)
        assert server.stats.expired == 0

    def test_policy_validation(self):
        with pytest.raises(PlanError):
            AdmissionPolicy(admission_timeout_batches=0)


class TestCancellation:
    def test_queued_query_cancels_and_releases_slot(self):
        s = tiny_gpu_session()
        server = s.serve()
        keep = server.submit(s.table("f").where("a", between=(0, 9)).count("n"))
        drop = server.submit(s.table("f").where("a", between=(0, 9)).count("n"))
        assert server.queued == 2
        assert drop.cancel() is True
        assert server.queued == 1
        assert drop.state == "cancelled"
        assert drop.done()
        with pytest.raises(CancelledError):
            drop.result()
        assert server.stats.cancelled == 1
        server.drain()
        assert keep.state == "done"

    def test_completed_query_cannot_cancel(self):
        s = tiny_gpu_session()
        server = s.serve()
        h = server.submit(s.table("f").where("a", between=(0, 9)).count("n"))
        h.result()
        assert h.cancel() is False
        assert h.state == "done"

    def test_cancel_is_idempotent_on_the_queue(self):
        s = tiny_gpu_session()
        server = s.serve()
        h = server.submit(s.table("f").where("a", between=(0, 9)).count("n"))
        assert h.cancel() is True
        assert h.cancel() is False  # no longer queued
        assert server.stats.cancelled == 1
