"""Batched-vs-solo equivalence: the serving layer's charge-neutrality pin.

Any mix of selection and band-join queries pushed through the scheduler
must yield byte-identical :class:`Result`s and per-query
:class:`Timeline` spans versus sequential ``run()`` calls — batching is
a wall-clock optimization only, invisible to every modeled ledger.  The
property must also survive an evicting (segment-granular) view budget:
rebuilding shared views mid-batch may cost wall-clock, never bytes.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import IntType, Session
from repro.storage.decompose import set_view_budget


@pytest.fixture(autouse=True)
def restore_budget():
    yield
    set_view_budget(None)


def make_session(seed=17, n=8_000) -> Session:
    rng = np.random.default_rng(seed)
    s = Session()
    s.create_table(
        "f",
        {"a": IntType(), "b": IntType(), "plain": IntType()},
        {
            "a": rng.integers(0, 30_000, n),
            "b": rng.integers(0, 3_000, n),
            "plain": rng.integers(0, 25, n),
        },
    )
    s.create_table("q", {"v": IntType()}, {"v": rng.integers(0, 30_000, 600)})
    s.bwdecompose("f", "a", 24)
    s.bwdecompose("f", "b", 26)
    s.bwdecompose("q", "v", 24)
    return s


@pytest.fixture(scope="module")
def session():
    return make_session()


def mixed_builders(session, ranges, deltas):
    """A workload interleaving fusable scans, probes and band joins."""
    builders = []
    for lo, hi in ranges:
        builders.append(
            session.table("f").where("a", between=(lo, hi)).count("n")
        )
        builders.append(
            session.table("f").where("a", between=(lo, hi)).sum("b", "s")
        )
    for delta in deltas:
        builders.append(
            session.table("f").band_join("q", on=("a", "v"), delta=delta)
            .count("m")
        )
        builders.append(
            session.table("f").where("a", "<=", 4_000)
            .band_join("q", on=("a", "v"), delta=delta)
        )
    builders.append(
        session.table("f").where("a", between=(100, 9_000))
        .where("b", "<=", 1_500).group_by("plain").count("n")
    )
    builders.append(session.table("f").where("a", "<=", 2_000).select("b"))
    return builders


def assert_results_identical(solo, batched, label=""):
    assert solo.row_count == batched.row_count, label
    assert list(solo.columns) == list(batched.columns), label
    for name in solo.columns:
        a, b = solo.columns[name], batched.columns[name]
        assert np.asarray(a).dtype == np.asarray(b).dtype, (label, name)
        assert np.array_equal(a, b), (label, name)
    assert solo.approximate == batched.approximate, label
    assert solo.timeline.spans_equal(batched.timeline), (
        label, "modeled ledgers diverged"
    )


def run_equivalence(session, builders, max_batch=16, **serve_kwargs):
    solo = [b.run(mode="ar") for b in builders]
    server = session.serve(max_batch=max_batch, **serve_kwargs)
    handles = [b.submit(server) for b in builders]
    server.drain()
    for i, (s_res, handle) in enumerate(zip(solo, handles)):
        assert_results_identical(s_res, handle.result(), label=f"query #{i}")
    return server


class TestMixedWorkloadEquivalence:
    RANGES = [(0, 999), (500, 4_000), (10_000, 11_000), (25_000, 29_999)]
    DELTAS = [5, 40]

    def test_mixed_batch_is_byte_identical(self, session):
        builders = mixed_builders(session, self.RANGES, self.DELTAS)
        # Default (cost) serving: the membership gate may legitimately
        # pick solo scans for this high-selectivity mix — either way the
        # batch must have been considered, and results stay identical.
        server = run_equivalence(session, builders)
        assert server.stats.fused_queries >= 2 or server.stats.cost_gated_solo >= 1
        # The fusing machinery itself is pinned under the heuristic.
        server = run_equivalence(session, builders, optimizer="heuristic")
        assert server.stats.fused_queries >= 2  # the scans really fused

    def test_equivalence_under_evicting_budget(self, session):
        # A budget far smaller than the working set, with fine-grained
        # segments: views evict and rebuild *between* batch members.
        set_view_budget(64 * 1024, segment_rows=512)
        builders = mixed_builders(session, self.RANGES, self.DELTAS)
        run_equivalence(session, builders)

    def test_equivalence_at_every_batch_width(self, session):
        builders = mixed_builders(session, self.RANGES[:2], self.DELTAS[:1])
        for width in (1, 2, 5, 16):
            run_equivalence(session, builders, max_batch=width)


class TestPropertyEquivalence:
    @given(
        seeds=st.lists(st.integers(0, 2**16), min_size=1, max_size=6),
        width=st.sampled_from([1, 3, 16]),
        budgeted=st.booleans(),
    )
    @settings(
        max_examples=12, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_random_mix_is_byte_identical(self, session, seeds, width, budgeted):
        if budgeted:
            set_view_budget(96 * 1024, segment_rows=1024)
        else:
            set_view_budget(None)
        builders = []
        for seed in seeds:
            rng = np.random.default_rng(seed)
            kind = int(rng.integers(0, 3))
            lo = int(rng.integers(0, 25_000))
            hi = lo + int(rng.integers(1, 6_000))
            if kind == 0:
                builders.append(
                    session.table("f").where("a", between=(lo, hi)).count("n")
                )
            elif kind == 1:
                builders.append(
                    session.table("f").where("a", between=(lo, hi))
                    .avg("b", "m")
                )
            else:
                delta = int(rng.integers(0, 60))
                builders.append(
                    session.table("f")
                    .band_join("q", on=("a", "v"), delta=delta).count("m")
                )
        run_equivalence(session, builders, max_batch=width)
