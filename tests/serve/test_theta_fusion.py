"""Fused theta batches: one searchsorted sweep, byte-identical ledgers.

Theta-join queries sharing a right side and batched by the scheduler get
their candidate runs carved out of ONE concatenated ``searchsorted``
sweep over the shared right column (PR 6, satellite of the sharding
work).  Every member's Result and per-query Timeline must stay
byte-identical to its solo run; the sweep's saving shows up only in
``ServeStats.modeled_theta_sharing_gain``.
"""

import numpy as np
import pytest

from repro import IntType, Session

N = 6_000
M = 500
DOMAIN = 40_000


def make_session(seed=29):
    rng = np.random.default_rng(seed)
    s = Session()
    s.create_table(
        "f",
        {"a": IntType(), "b": IntType()},
        {
            "a": rng.integers(0, DOMAIN, N),
            "b": rng.integers(0, DOMAIN, N),
        },
    )
    s.create_table("q", {"v": IntType()}, {"v": rng.integers(0, DOMAIN, M)})
    s.bwdecompose("f", "a", 24)
    s.bwdecompose("f", "b", 24)
    s.bwdecompose("q", "v", 24)
    return s


@pytest.fixture(scope="module")
def session():
    return make_session()


def theta_builders(session):
    """Four whole-column theta blocks sharing the right side ``q.v``."""
    return [
        session.table("f").theta_join(
            "q", on=("a", "v"), op="<"
        ).count(alias="n"),
        session.table("f").theta_join(
            "q", on=("a", "v"), op="within", delta=48
        ).count(alias="n"),
        session.table("f").theta_join(
            "q", on=("b", "v"), op=">="
        ).count(alias="n"),
        session.table("f").theta_join(
            "q", on=("b", "v"), op="within", delta=16
        ).count(alias="n"),
    ]


@pytest.mark.parametrize("mode", ["ar", "approximate"])
def test_fused_theta_batch_is_byte_identical(session, mode):
    solo = [b.run(mode=mode) for b in theta_builders(session)]
    with session.serve(max_batch=8) as server:
        handles = [
            b.submit(server, mode=mode) for b in theta_builders(session)
        ]
        batched = [h.result() for h in handles]
    for s, b in zip(solo, batched):
        assert s.columns.keys() == b.columns.keys()
        for k in s.columns:
            assert np.array_equal(s.columns[k], b.columns[k])
        assert s.timeline.span_tuples() == b.timeline.span_tuples()
        if s.approximate is not None:
            assert (
                s.approximate.candidate_rows == b.approximate.candidate_rows
            )


def test_fused_theta_stats(session):
    with session.serve(max_batch=8) as server:
        for b in theta_builders(session):
            b.submit(server)
        server.drain()
        stats = server.stats
    assert stats.fused_theta_batches >= 1
    assert stats.fused_theta_queries >= 2
    assert stats.modeled_fused_theta_seconds > 0.0
    assert stats.modeled_solo_theta_seconds > 0.0
    # One concatenated sweep beats per-query sweeps in the model.
    assert stats.modeled_theta_sharing_gain > 1.0


def test_selection_under_theta_degrades_to_solo(session):
    """A drivable selection under the join means the plan does not open
    with the whole-column ApproxThetaJoin — such members run solo, still
    byte-identical."""
    builders = [
        session.table("f")
        .where("a", between=(0, 20_000))
        .theta_join("q", on=("a", "v"), op="<")
        .count(alias="n")
        for _ in range(3)
    ]
    solo = [b.run(mode="ar") for b in builders]
    with session.serve(max_batch=8) as server:
        handles = [b.submit(server) for b in builders]
        batched = [h.result() for h in handles]
    for s, b in zip(solo, batched):
        for k in s.columns:
            assert np.array_equal(s.columns[k], b.columns[k])
        assert s.timeline.span_tuples() == b.timeline.span_tuples()


def test_classic_theta_batch_unchanged(session):
    builders = theta_builders(session)
    solo = [b.run(mode="classic") for b in builders]
    with session.serve(max_batch=8) as server:
        handles = [b.submit(server, mode="classic") for b in builders]
        batched = [h.result() for h in handles]
        stats = server.stats
    assert stats.fused_theta_batches == 0  # classic never fuses
    for s, b in zip(solo, batched):
        for k in s.columns:
            assert np.array_equal(s.columns[k], b.columns[k])
