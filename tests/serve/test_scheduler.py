"""Unit tests for the multi-query scheduler: admission, batching, handles."""

import numpy as np
import pytest

from repro import IntType, PlanError, Session
from repro.device.machine import Machine
from repro.device.model import DeviceSpec
from repro.plan.logical import Query
from repro.serve import AdmissionPolicy, QueryQueue, Scheduler
from repro.serve.handles import QueryHandle
from repro.serve.scheduler import _Pending


def make_session(n=20_000, seed=3) -> Session:
    rng = np.random.default_rng(seed)
    s = Session()
    s.create_table(
        "f",
        {"a": IntType(), "b": IntType(), "plain": IntType()},
        {
            "a": rng.integers(0, 50_000, n),
            "b": rng.integers(0, 5_000, n),
            "plain": rng.integers(0, 40, n),
        },
    )
    s.create_table("r", {"v": IntType()}, {"v": rng.integers(0, 50_000, 800)})
    s.bwdecompose("f", "a", 24)
    s.bwdecompose("f", "b", 24)
    s.bwdecompose("r", "v", 24)
    return s


@pytest.fixture(scope="module")
def session():
    return make_session()


def count_between(session, lo, hi):
    return session.table("f").where("a", between=(lo, hi)).count("n")


class TestFingerprints:
    def test_scan_fingerprint_keys_on_first_simple_predicate(self, session):
        q = count_between(session, 10, 20).build()
        assert q.batch_fingerprint() == ("scan", "f", "a")

    def test_theta_fingerprint_keys_on_shared_right_side(self, session):
        q = session.table("f").band_join("r", on=("a", "v"), delta=9).build()
        assert q.batch_fingerprint() == ("theta", "r", "v")
        assert q.theta_joins[0].share_key() == ("r", "v")

    def test_unshareable_block_is_solo(self):
        q = Query(table="f", select=("plain",))
        assert q.batch_fingerprint() == ("solo", "f")


class TestHandles:
    def test_submit_returns_pending_handle(self, session):
        server = session.serve()
        handle = count_between(session, 0, 999).submit(server)
        assert isinstance(handle, QueryHandle)
        assert not handle.done()
        result = handle.result()
        assert handle.done() and handle.state == "done"
        assert result.scalar("n") >= 0
        assert handle.timeline() is result.timeline

    def test_handle_is_awaitable(self, session):
        import asyncio

        server = session.serve()
        handle = count_between(session, 0, 2_000).submit(server)

        async def consume():
            return await handle

        result = asyncio.run(consume())
        assert result.scalar("n") == count_between(session, 0, 2_000).run().scalar("n")

    def test_explain_renders_the_plan(self, session):
        server = session.serve()
        handle = count_between(session, 0, 999).submit(server)
        assert "uselectapproximate" in handle.explain()

    def test_error_is_captured_and_reraised(self, session):
        server = session.serve()
        # 'plain' is not decomposed: the theta rewrite fails with PlanError.
        bad = session.table("f").theta_join("r", on=("plain", "v"), op="<")
        ok = count_between(session, 0, 500)
        h_bad = bad.submit(server)
        h_ok = ok.submit(server)
        server.drain()
        with pytest.raises(PlanError):
            h_bad.result()
        assert h_ok.result().scalar("n") == ok.run().scalar("n")
        assert server.stats.failed == 1

    def test_drain_until_foreign_handle_fails_it(self, session):
        server_a = session.serve()
        server_b = session.serve()
        handle = count_between(session, 0, 99).submit(server_a)
        foreign = QueryHandle(server_b, handle.query, "ar", 99)
        with pytest.raises(Exception):
            foreign.result()
        assert foreign.state == "failed"


class TestAdmission:
    def test_policy_validation(self):
        with pytest.raises(PlanError):
            AdmissionPolicy(max_in_flight=0)
        with pytest.raises(PlanError):
            AdmissionPolicy(max_batch=0)
        with pytest.raises(PlanError):
            AdmissionPolicy(device_headroom_fraction=0.0)

    def test_unknown_mode_rejected_at_submit(self, session):
        server = session.serve()
        with pytest.raises(PlanError):
            count_between(session, 0, 9).submit(server, mode="warp")

    def test_in_flight_bound_drains_cooperatively(self, session):
        server = session.serve(max_in_flight=2, max_batch=2)
        handles = [count_between(session, i, i + 500).submit(server) for i in range(6)]
        assert server.stats.backpressure_stalls > 0
        assert server.queued <= 2
        server.drain()
        assert all(h.done() for h in handles)

    def test_closed_scheduler_refuses_submissions(self, session):
        server = session.serve()
        handle = count_between(session, 0, 9).submit(server)
        server.close()
        assert handle.done()
        with pytest.raises(PlanError):
            count_between(session, 0, 9).submit(server)

    def test_context_manager_drains_on_exit(self, session):
        with session.serve() as server:
            handle = count_between(session, 5, 800).submit(server)
        assert handle.done()

    def test_exception_exit_cancels_queued_queries(self, session):
        from repro.serve.handles import CancelledError

        with pytest.raises(ValueError):
            with session.serve() as server:
                handle = count_between(session, 0, 9).submit(server)
                raise ValueError("boom")
        # The in-flight exception is not masked; the queued query is
        # cancelled, not silently executed on the closed scheduler.
        assert handle.state == "failed"
        with pytest.raises(CancelledError):
            handle.result()

    def test_memory_backpressure_splits_batches(self):
        # A GPU whose free memory fits only a couple of queries' expected
        # candidate output: wide scans must split into several batches.
        n = 20_000
        spec = DeviceSpec(
            name="tiny-gpu", kind="gpu",
            memory_capacity=400_000,
            seq_bandwidth=150e9, random_bandwidth=20e9, launch_overhead=5e-6,
        )
        s = Session(Machine(gpu_spec=spec))
        rng = np.random.default_rng(0)
        s.create_table("f", {"a": IntType()}, {"a": rng.integers(0, n, n)})
        s.bwdecompose("f", "a", 24)
        server = s.serve(max_batch=16)
        builders = [
            s.table("f").where("a", between=(0, n - 1)).count("n")
            for _ in range(8)
        ]
        handles = [b.submit(server) for b in builders]
        server.drain()
        assert server.stats.memory_splits >= 1
        assert server.stats.batches > 1
        expected = builders[0].run().scalar("n")
        assert all(h.result().scalar("n") == expected for h in handles)


class TestBatching:
    def test_same_column_scans_fuse(self, session):
        # Heuristic policy: always fuse (the cost default may gate solo).
        server = session.serve(max_batch=8, optimizer="heuristic")
        handles = [count_between(session, i * 100, i * 100 + 900).submit(server)
                   for i in range(8)]
        server.drain()
        assert server.stats.fused_batches == 1
        assert server.stats.fused_queries == 8
        assert server.stats.largest_batch == 8
        assert server.stats.modeled_scan_sharing_gain > 1.0
        for i, h in enumerate(handles):
            assert h.result().scalar("n") == count_between(
                session, i * 100, i * 100 + 900
            ).run().scalar("n")

    def test_different_columns_do_not_fuse(self, session):
        server = session.serve(max_batch=8)
        count_between(session, 0, 99).submit(server)
        session.table("f").where("b", "<=", 50).count("n").submit(server)
        server.drain()
        assert server.stats.fused_batches == 0
        assert server.stats.batches == 2

    def test_mixed_modes_do_not_share_a_batch(self, session):
        server = session.serve(max_batch=8)
        count_between(session, 0, 999).submit(server, mode="ar")
        count_between(session, 0, 999).submit(server, mode="classic")
        server.drain()
        assert server.stats.batches == 2

    def test_shared_right_theta_batch(self, session):
        server = session.serve(max_batch=4)
        builders = [
            session.table("f").band_join("r", on=("a", "v"), delta=d).count("m")
            for d in (3, 9, 27)
        ]
        handles = [b.submit(server) for b in builders]
        server.drain()
        assert server.stats.shared_right_batches == 1
        for b, h in zip(builders, handles):
            assert h.result().scalar("m") == b.run().scalar("m")

    def test_submit_many_on_scheduler(self, session):
        server = session.serve()
        queries = [count_between(session, i, i + 99).build() for i in range(4)]
        handles = server.submit_many(queries)
        assert [h.result().scalar("n") for h in handles] == [
            session.query(q).scalar("n") for q in queries
        ]

    def test_submit_many_on_builder(self, session):
        server = session.serve()
        base = session.table("f").count("n")
        handles = base.submit_many(
            server,
            [("a", "<=", 1_000), ("a", ">", 40_000),
             lambda b: b.where("a", between=(5, 50))],
        )
        expected = [
            base.where("a", "<=", 1_000).run().scalar("n"),
            base.where("a", ">", 40_000).run().scalar("n"),
            base.where("a", between=(5, 50)).run().scalar("n"),
        ]
        assert [h.result().scalar("n") for h in handles] == expected

    def test_approximate_mode_fuses_too(self, session):
        server = session.serve(max_batch=4, optimizer="heuristic")
        builders = [count_between(session, i, i + 3_000) for i in range(4)]
        handles = [b.submit(server, mode="approximate") for b in builders]
        server.drain()
        assert server.stats.fused_batches == 1
        for b, h in zip(builders, handles):
            solo = b.run(mode="approximate")
            got = h.result()
            assert got.approximate.candidate_rows == solo.approximate.candidate_rows
            assert got.timeline.spans_equal(solo.timeline)


class TestQueryQueue:
    def test_pop_respects_max_batch(self, session):
        server = session.serve(max_batch=3)
        for i in range(7):
            count_between(session, i, i + 9).submit(server)
        server.drain()
        assert server.stats.batch_size_counts == {3: 2, 1: 1}

    def test_pop_preserves_incompatible_queue_order(self):
        """Queries skipped by the batch former stay queued in FIFO order."""

        def pending(group, tag):
            p = _Pending(
                handle=tag, query=None, mode="ar", pushdown=True,
                predicate_order="query", group=((group, "t", "c"), "ar"),
                scratch_bytes=0,
            )
            return p

        queue = QueryQueue()
        assert len(queue) == 0 and not queue
        order = [("scan", "a1"), ("theta", "t1"), ("scan", "a2"),
                 ("solo", "s1"), ("scan", "a3"), ("theta", "t2")]
        for group, tag in order:
            queue.push(pending(group, tag))
        batch, split = queue.pop_batch(AdmissionPolicy(max_batch=8), None)
        assert [p.handle for p in batch] == ["a1", "a2", "a3"]
        assert not split
        # The incompatible survivors keep their exact submission order.
        assert [p.handle for p in queue._items] == ["t1", "s1", "t2"]
