"""Serving with writes in flight: admission, watermarks, byte-identity.

The scheduler's write path must (a) fold deltas only at the watermark
and only between batches, (b) defer — never drop — writes that arrive
while a compaction holds the table's write intent, (c) never block a
read, and (d) leave every read's Result and modeled Timeline exactly
what a solo ``session.query`` of the same query would produce, under
both optimizers, with delta rows in flight.
"""

import numpy as np
import pytest

from repro import IntType, Session

N = 4_000
DOMAIN = 30_000


def make_session(seed=21):
    rng = np.random.default_rng(seed)
    s = Session()
    s.create_table(
        "t", {"v": IntType(), "w": IntType()},
        {
            "v": rng.integers(0, DOMAIN, N).astype(np.int64),
            "w": rng.integers(0, 25, N).astype(np.int64),
        },
    )
    s.bwdecompose("t", "v", 24)
    s.bwdecompose("t", "w", 24)
    return s


def batch(k, rows=50):
    rng = np.random.default_rng(100 + k)
    return {
        "v": rng.integers(0, DOMAIN, rows).astype(np.int64),
        "w": rng.integers(0, 25, rows).astype(np.int64),
    }


WINDOWS = [(0, 3_000), (2_000, 9_000), (5_000, 20_000), (100, 25_000)]


def test_watermark_compaction_fires_between_batches():
    s = make_session()
    epoch = s.catalog.epoch
    server = s.serve(max_batch=4, delta_watermark=120)

    server.submit_write("t", batch(0))  # 50 pending: below watermark
    s.table("t").where("v", between=(0, 900)).count("n").submit(server)
    server.drain()
    assert server.stats.compactions == 0
    assert s.catalog.delta_rows("t") == 50
    assert s.catalog.epoch == epoch

    server.submit_write("t", batch(1))
    server.submit_write("t", batch(2))  # 150 pending: past watermark
    s.table("t").where("v", between=(0, 900)).count("n").submit(server)
    server.drain()
    assert server.stats.compactions == 1
    assert s.catalog.delta_rows("t") == 0
    assert s.catalog.epoch == epoch + 1
    assert server.stats.writes == 3
    assert server.stats.reads_blocked == 0


def test_reads_with_delta_match_solo_run_byte_for_byte():
    """Each served read, with uncompacted delta in flight, is
    span-for-span identical to a solo run on the same session — the
    serve-path ContributionCache replays, not re-models, delta spans."""
    for optimizer in ("cost", "heuristic"):
        s = make_session()
        s.append("t", batch(7))
        server = s.serve(
            max_batch=4, delta_watermark=1 << 30, optimizer=optimizer
        )
        handles = [
            s.table("t").where("v", between=r).count("n").sum("w", "x")
            .submit(server)
            for r in WINDOWS * 3  # repeats exercise the caches
        ]
        server.drain()
        for h, r in zip(handles, WINDOWS * 3):
            solo = (
                s.table("t").where("v", between=r).count("n").sum("w", "x")
                .run()
            )
            got = h.result()
            for k in solo.columns:
                assert np.array_equal(got.columns[k], solo.columns[k]), (
                    optimizer, r, k,
                )
            assert got.timeline.span_tuples() == solo.timeline.span_tuples(), (
                optimizer, r,
            )


def test_cost_and_heuristic_agree_on_columns_with_delta():
    results = {}
    for optimizer in ("cost", "heuristic"):
        s = make_session()
        s.append("t", batch(9))
        server = s.serve(
            max_batch=8, delta_watermark=1 << 30, optimizer=optimizer
        )
        handles = [
            s.table("t").where("v", between=r).count("n").submit(server)
            for r in WINDOWS
        ]
        server.drain()
        results[optimizer] = [
            int(h.result().columns["n"][0]) for h in handles
        ]
    assert results["cost"] == results["heuristic"]


def test_deferred_writes_flush_after_compaction():
    s = make_session()
    from repro.ingest import compact as ingest_compact

    seen = []

    def spy(table):
        # While the compaction holds the intent, a new write must defer.
        n = s_server.submit_write("t", batch(3, rows=5))
        seen.append(n)

    ingest_compact.fail_hook = spy
    try:
        s_server = s.serve(max_batch=4, delta_watermark=40)
        s_server.submit_write("t", batch(4))
        s.table("t").where("v", between=(0, 900)).count("n").submit(s_server)
        s_server.drain()
    finally:
        ingest_compact.fail_hook = None
    assert seen == [0], "write during compaction must defer, not land"
    assert s_server.stats.deferred_writes == 1
    # The deferred batch flushed into the (now empty) delta right after.
    assert s.catalog.delta_rows("t") == 5
    assert s_server.stats.writes == 2


def test_plan_cache_hit_rate_on_repeated_panel():
    s = make_session()
    server = s.serve(max_batch=8)
    for _ in range(10):
        for r in WINDOWS:
            s.table("t").where("v", between=r).count("n").submit(server)
        server.drain()
    assert server.stats.plan_cache_hit_rate >= 0.9
    # An epoch bump (compaction) invalidates cached plans exactly once.
    s.append("t", batch(5))
    s.compact("t")
    before_misses = server.stats.plan_cache_misses
    for _ in range(2):
        for r in WINDOWS:
            s.table("t").where("v", between=r).count("n").submit(server)
        server.drain()
    new_misses = server.stats.plan_cache_misses - before_misses
    assert new_misses == len(WINDOWS), "one re-plan per query per epoch"


def test_write_only_workload_needs_no_reads():
    s = make_session()
    server = s.serve(max_batch=4, delta_watermark=1 << 30)
    for k in range(5):
        assert server.submit_write("t", batch(k)) == 50
    assert s.catalog.delta_rows("t") == 250
    assert server.stats.writes == 5
    assert server.stats.reads_blocked == 0


def test_submit_write_validates_rows():
    s = make_session()
    server = s.serve()
    with pytest.raises(Exception, match="column"):
        server.submit_write("t", {"v": np.array([1])})  # missing "w"
