"""The serve-side cost gate (PR 8): fuse a scan batch only when the
estimated cooperative pass beats per-member solo scans — with results
byte-identical either way, and the decision on the audit trail."""

import numpy as np
import pytest

from repro.engine.session import Session
from repro.errors import PlanError
from repro.storage.column import IntType

DOMAIN = 1 << 20
N = 60_000


@pytest.fixture()
def session():
    rng = np.random.default_rng(13)
    s = Session()
    s.create_table("t", {"v": IntType()}, {"v": rng.integers(0, DOMAIN, N)})
    s.bwdecompose("t", "v", 24)
    return s


def _windows(fraction, count=6, seed=2):
    rng = np.random.default_rng(seed)
    width = int(fraction * DOMAIN)
    los = rng.integers(0, DOMAIN - width, count)
    return [(int(lo), int(lo + width)) for lo in los]


def _serve_counts(session, windows, **serve_kwargs):
    with session.serve(max_batch=16, **serve_kwargs) as server:
        handles = [
            session.table("t").where("v", between=w).count("n").submit(server)
            for w in windows
        ]
        results = [h.result() for h in handles]
    return [r.scalar("n") for r in results], server.stats, results


def test_narrow_windows_stay_fused(session):
    counts, stats, _ = _serve_counts(
        session, _windows(0.002), optimizer="cost"
    )
    baseline = [
        session.table("t").where("v", between=w).count("n").run(mode="ar")
        .scalar("n")
        for w in _windows(0.002)
    ]
    assert counts == baseline
    assert stats.cost_gated_batches >= 1
    assert stats.cost_gated_solo == 0
    assert stats.fused_batches >= 1


def test_wide_windows_are_gated_to_solo(session):
    counts, stats, _ = _serve_counts(
        session, _windows(0.65), optimizer="cost"
    )
    baseline = [
        session.table("t").where("v", between=w).count("n").run(mode="ar")
        .scalar("n")
        for w in _windows(0.65)
    ]
    assert counts == baseline
    assert stats.cost_gated_solo >= 1
    assert stats.fused_batches == 0


def test_heuristic_policy_never_gates(session):
    # Explicit since PR 9: serve() now defaults to the cost optimizer.
    _, stats, _ = _serve_counts(session, _windows(0.65), optimizer="heuristic")
    assert stats.cost_gated_batches == 0
    assert stats.cost_gated_solo == 0
    assert stats.fused_batches >= 1  # historical behavior: always fuse


def test_gated_results_identical_to_solo_run(session):
    windows = _windows(0.65)
    counts, _, results = _serve_counts(session, windows, optimizer="cost")
    for w, served in zip(windows, results):
        solo = (
            session.table("t").where("v", between=w).count("n").run(mode="ar")
        )
        np.testing.assert_array_equal(served.columns["n"], solo.columns["n"])
        assert served.timeline.span_tuples() == solo.timeline.span_tuples()


def test_gate_decision_lands_on_audit_trail(session):
    with session.serve(max_batch=16, optimizer="cost") as server:
        for w in _windows(0.65):
            session.table("t").where("v", between=w).count("n").submit(server)
    decisions = list(server.recent_decisions)
    assert decisions
    assert decisions[-1].kind == "batch-membership"
    assert decisions[-1].chosen == "solo"
    assert {a.label for a in decisions[-1].alternatives} == {"fused", "solo"}


def test_serve_rejects_unknown_optimizer(session):
    with pytest.raises(PlanError, match="unknown optimizer"):
        session.serve(optimizer="greedy")
