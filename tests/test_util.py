"""Tests for the shared helpers in repro.util."""

import numpy as np
import pytest

from repro.errors import BitWidthError
from repro.util import (
    as_index_array,
    bits_for_range,
    check_bits,
    format_bytes,
    format_seconds,
    mask,
    rng,
)


class TestBitsForRange:
    def test_boundaries(self):
        assert bits_for_range(0) == 1
        assert bits_for_range(1) == 1
        assert bits_for_range(2) == 2
        assert bits_for_range(255) == 8
        assert bits_for_range(256) == 9
        assert bits_for_range(2**32 - 1) == 32

    def test_negative_rejected(self):
        with pytest.raises(BitWidthError):
            bits_for_range(-1)


class TestCheckBitsAndMask:
    def test_valid_range(self):
        assert check_bits(1) == 1
        assert check_bits(64) == 64
        assert check_bits(0, lo=0) == 0

    def test_invalid(self):
        with pytest.raises(BitWidthError):
            check_bits(0)
        with pytest.raises(BitWidthError):
            check_bits(65)
        with pytest.raises(BitWidthError):
            check_bits(3.5)  # type: ignore[arg-type]

    def test_mask_values(self):
        assert mask(0) == 0
        assert mask(3) == 0b111
        assert mask(64) == 2**64 - 1


class TestFormatting:
    def test_format_bytes(self):
        assert format_bytes(0) == "0 B"
        assert format_bytes(1023) == "1023 B"
        assert format_bytes(2048) == "2.0 KiB"
        assert format_bytes(3 * 1024**3) == "3.0 GiB"
        assert "TiB" in format_bytes(5 * 1024**4)

    def test_format_seconds(self):
        assert format_seconds(2.5) == "2.500 s"
        assert format_seconds(0.0042) == "4.20 ms"
        assert format_seconds(3.3e-6) == "3.3 µs"


class TestArrays:
    def test_rng_determinism(self):
        assert rng(7).integers(0, 100, 5).tolist() == rng(7).integers(0, 100, 5).tolist()

    def test_as_index_array_coerces(self):
        out = as_index_array([3, 1, 2])
        assert out.dtype == np.int64
        assert out.tolist() == [3, 1, 2]

    def test_as_index_array_rejects_2d(self):
        with pytest.raises(ValueError):
            as_index_array(np.zeros((2, 2)))
