"""Tests for the three workload generators and their evaluated queries."""

import numpy as np
import pytest

from repro.storage.column import DateType
from repro.workloads.microbench import (
    grouping_column,
    selectivity_range,
    unique_shuffled_ints,
)
from repro.workloads.spatial import (
    LAT_MAX,
    LAT_MIN,
    LON_MAX,
    LON_MIN,
    SPATIAL_QUERY_SQL,
    SpatialConfig,
    build_spatial_session,
    generate_trips,
)
from repro.workloads.tpch import (
    SHIPDATE_HI,
    SHIPDATE_LO,
    TpchConfig,
    build_tpch_session,
    generate_lineitem,
    generate_part,
    part_type_dictionary,
    q1_sql,
    q6_sql,
    q14_sql,
)


class TestMicrobench:
    def test_unique_and_complete(self):
        values = unique_shuffled_ints(10_000)
        assert len(np.unique(values)) == 10_000
        assert values.min() == 0 and values.max() == 9_999

    def test_shuffled_not_sorted(self):
        values = unique_shuffled_ints(10_000)
        assert not np.all(np.diff(values) > 0)

    def test_deterministic_by_seed(self):
        assert np.array_equal(unique_shuffled_ints(100, 5), unique_shuffled_ints(100, 5))
        assert not np.array_equal(
            unique_shuffled_ints(100, 5), unique_shuffled_ints(100, 6)
        )

    def test_selectivity_is_exact(self):
        n = 10_000
        values = unique_shuffled_ints(n)
        for frac in (0.01, 0.1, 0.6, 1.0):
            vr = selectivity_range(n, frac)
            assert int(vr.evaluate(values).sum()) == int(round(n * frac))

    def test_zero_selectivity(self):
        assert selectivity_range(100, 0.0).is_empty

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            unique_shuffled_ints(0)
        with pytest.raises(ValueError):
            selectivity_range(10, 1.5)
        with pytest.raises(ValueError):
            grouping_column(10, 0)

    def test_grouping_column_cardinality(self):
        col = grouping_column(1000, 37)
        assert len(np.unique(col)) == 37


class TestSpatial:
    def test_schema_and_ranges(self):
        data = generate_trips(SpatialConfig(n_points=20_000, seed=1))
        assert set(data) == {"tripid", "lon", "lat", "time"}
        assert data["lon"].min() >= LON_MIN and data["lon"].max() <= LON_MAX
        assert data["lat"].min() >= LAT_MIN and data["lat"].max() <= LAT_MAX

    def test_trips_are_clustered_walks(self):
        config = SpatialConfig(n_points=10_000, points_per_trip=100, seed=2)
        data = generate_trips(config)
        lon = data["lon"].reshape(config.n_trips, 100)
        spans = lon.max(axis=1) - lon.min(axis=1)
        # a trip's fixes stay local, far tighter than the full domain
        assert float(np.median(spans)) < 1.0

    def test_benchmark_query_hits_and_matches_classic(self):
        session = build_spatial_session(SpatialConfig(n_points=50_000, seed=3))
        ar = session.execute(SPATIAL_QUERY_SQL)
        classic = session.execute(SPATIAL_QUERY_SQL, mode="classic")
        assert ar.scalar("count_0") == classic.scalar("count_0")
        assert ar.scalar("count_0") > 0  # the hotspot guarantees hits

    def test_decomposition_matches_table1(self):
        session = build_spatial_session(SpatialConfig(n_points=20_000, seed=4))
        lon = session.catalog.decomposition_of("trips", "lon")
        assert lon is not None
        # decimal(8,5) is a 32-bit storage column; 24 device bits → 8 residual
        assert lon.decomposition.residual_bits == 8

    def test_prefix_compression_saves_about_a_quarter(self):
        """§VI-C2: '25% reduction ... by factoring out the highest byte'."""
        session = build_spatial_session(SpatialConfig(n_points=50_000, seed=5))
        lon = session.catalog.decomposition_of("trips", "lon")
        stored_bits = lon.decomposition.total_bits
        saving = 1.0 - stored_bits / 32.0
        assert 0.15 <= saving <= 0.35


class TestTpch:
    def test_bit_widths_match_paper(self):
        """§VI-D1: quantity 50 values/6 bits, discount 4 bits, shipdate 12."""
        data = generate_lineitem(TpchConfig(scale_factor=0.005))
        assert len(np.unique(data["quantity"])) == 50
        assert int(data["quantity"].max()).bit_length() == 6
        assert len(np.unique(data["discount"])) == 11
        assert int(data["discount"].max()).bit_length() == 4
        span = int(data["shipdate"].max() - data["shipdate"].min())
        assert span.bit_length() == 12

    def test_shipdate_domain(self):
        data = generate_lineitem(TpchConfig(scale_factor=0.005))
        assert data["shipdate"].min() >= SHIPDATE_LO
        assert data["shipdate"].max() <= SHIPDATE_HI

    def test_q1_four_groups(self):
        """returnflag × linestatus gives the canonical 4 TPC-H Q1 groups."""
        session = build_tpch_session(TpchConfig(scale_factor=0.003))
        result = session.execute(q1_sql())
        assert result.row_count == 4

    def test_part_type_dictionary(self):
        d = part_type_dictionary()
        assert len(d) == 150
        lo, hi = d.prefix_range("PROMO")
        assert hi - lo + 1 == 25  # 5 × 5 PROMO types

    def test_part_keys_dense(self):
        part = generate_part(TpchConfig(scale_factor=0.003))
        assert np.array_equal(part["key"], np.arange(len(part["key"])))

    def test_q1_matches_classic(self):
        session = build_tpch_session(TpchConfig(scale_factor=0.003))
        sql = q1_sql()
        ar = session.execute(sql).sorted_by("returnflag", "linestatus")
        classic = session.execute(sql, mode="classic").sorted_by(
            "returnflag", "linestatus"
        )
        for col in ("sum_qty", "sum_disc_price", "sum_charge", "count_order"):
            assert np.array_equal(ar.column(col), classic.column(col)), col
        assert np.allclose(ar.column("avg_qty"), classic.column("avg_qty"))

    def test_q6_matches_classic_and_is_selective(self):
        session = build_tpch_session(TpchConfig(scale_factor=0.003))
        sql = q6_sql()
        ar = session.execute(sql)
        classic = session.execute(sql, mode="classic")
        assert ar.scalar("revenue") == classic.scalar("revenue")
        assert ar.scalar("revenue") > 0

    def test_q6_space_constrained_same_answer(self):
        config = TpchConfig(scale_factor=0.003)
        plain = build_tpch_session(config)
        constrained = build_tpch_session(config, space_constrained=True)
        sql = q6_sql()
        assert plain.execute(sql).scalar("revenue") == constrained.execute(
            sql
        ).scalar("revenue")
        ship = constrained.catalog.decomposition_of("lineitem", "shipdate")
        assert ship.decomposition.residual_bits == 8

    def test_q14_matches_classic(self):
        session = build_tpch_session(TpchConfig(scale_factor=0.003))
        sql = q14_sql()
        ar = session.execute(sql)
        classic = session.execute(sql, mode="classic")
        assert ar.scalar("promo_revenue") == classic.scalar("promo_revenue")
        assert ar.scalar("total_revenue") == classic.scalar("total_revenue")
        ratio = 100.0 * ar.scalar("promo_revenue") / ar.scalar("total_revenue")
        assert 5.0 < ratio < 30.0  # ~25/150 part types are PROMO

    def test_q14_december_rollover(self):
        assert "1996-01-01" in q14_sql("1995-12")

    def test_all_gpu_setup_fits_2gb_at_paper_scale_rate(self):
        """§VI-D1: the low bit-widths let SF-10 selections stay resident.

        At our test scale the footprint must stay proportionally tiny.
        """
        config = TpchConfig(scale_factor=0.003)
        session = build_tpch_session(config)
        footprint = session.device_footprint()
        # ≤ ~8 bytes/row across all eight columns after bit-packing
        assert footprint < config.n_lineitem * 16

    def test_date_helpers(self):
        assert DateType.encode_one("1998-09-02") == (
            DateType.encode_one("1998-12-01") - 90
        )
        assert "1998-09-02" in q1_sql(90)
