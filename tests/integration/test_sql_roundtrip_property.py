"""Property-based SQL round trips: generated queries, three engines, one
answer.

Generates random (but valid) SQL over a fixed schema, executes it through
the A&R pipeline with and without pushdown, with both predicate orders, and
against the classic engine — all five answers must be identical, and any
approximate bounds must bracket them.  This is DESIGN.md invariant 5
exercised at the outermost API.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import IntType, Session


@pytest.fixture(scope="module")
def session():
    s = Session()
    rng = np.random.default_rng(99)
    n = 5_000
    s.create_table(
        "f",
        {"a": IntType(), "b": IntType(), "k": IntType(), "plain": IntType()},
        {
            "a": rng.integers(0, 2_000, n),
            "b": rng.integers(0, 2_000, n),
            "k": rng.integers(0, 12, n),
            "plain": rng.integers(0, 40, n),
        },
    )
    s.create_table(
        "d",
        {"key": IntType(), "w": IntType()},
        {"key": np.arange(12), "w": rng.integers(0, 9, 12)},
    )
    s.bwdecompose("f", "a", 26)
    s.bwdecompose("f", "b", 24)
    s.bwdecompose("f", "k", 32)
    s.bwdecompose("d", "w", 32)
    return s


_cols = st.sampled_from(["a", "b", "k", "plain"])
_ops = st.sampled_from(["<", "<=", ">", ">=", "=", "<>"])


@st.composite
def predicates(draw):
    col = draw(_cols)
    hi = {"a": 2000, "b": 2000, "k": 12, "plain": 40}[col]
    if draw(st.booleans()):
        lo = draw(st.integers(0, hi))
        width = draw(st.integers(0, hi))
        return f"{col} between {lo} and {lo + width}"
    op = draw(_ops)
    val = draw(st.integers(0, hi))
    return f"{col} {op} {val}"


@st.composite
def select_queries(draw):
    preds = draw(st.lists(predicates(), min_size=0, max_size=3))
    agg = draw(st.sampled_from(
        ["count(*)", "sum(a)", "sum(a * (2 - k))", "min(b)", "max(b)",
         "avg(a)", "sum(d.w)"]
    ))
    group = draw(st.sampled_from([None, "k", "plain"]))
    joins = " join d on f.k = d.key" if "d.w" in agg else ""
    where = (" where " + " and ".join(preds)) if preds else ""
    if group:
        return (
            f"select {group}, {agg} as out from f{joins}{where} "
            f"group by {group}"
        )
    return f"select {agg} as out from f{joins}{where}"


@settings(max_examples=50, deadline=None)
@given(sql=select_queries())
def test_property_five_ways_one_answer(session, sql):
    from repro.errors import ExecutionError

    try:
        classic = session.execute(sql, mode="classic")
    except ExecutionError:
        # empty min/max/avg: the A&R engine must refuse identically
        with pytest.raises(ExecutionError):
            session.execute(sql)
        return

    variants = [
        session.execute(sql),
        session.execute(sql, pushdown=False),
        session.execute(sql, predicate_order="selectivity"),
        session.execute(sql, pushdown=False, predicate_order="selectivity"),
    ]
    baseline = classic.sorted_by(*classic.columns.keys())
    for variant in variants:
        got = variant.sorted_by(*variant.columns.keys())
        assert got.row_count == baseline.row_count, sql
        for name in baseline.columns:
            a = np.asarray(got.columns[name])
            c = np.asarray(baseline.columns[name])
            if a.dtype.kind == "f" or c.dtype.kind == "f":
                assert np.allclose(a, c), (sql, name)
            else:
                assert np.array_equal(a, c), (sql, name)

    # Approximate bounds (when defined) must bracket the classic scalar.
    if baseline.row_count == 1 and "out" in baseline.columns:
        from repro import Interval

        bound = variants[0].approximate.bound("out")
        if isinstance(bound, Interval):  # scalar aggregate (not grouped)
            assert bound.lo <= float(baseline.columns["out"][0]) <= bound.hi, sql
