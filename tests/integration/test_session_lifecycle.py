"""Integration tests: whole-session lifecycles across the full stack."""

import numpy as np
import pytest

from repro import (
    DecimalType,
    DeviceOutOfMemory,
    IntType,
    Machine,
    Session,
    SqlError,
)
from repro.device.model import DeviceSpec, GTX_680


class TestDecomposeLifecycle:
    def test_redecompose_frees_device_memory(self):
        session = Session()
        session.create_table("t", {"v": IntType()}, {"v": np.arange(100_000)})
        session.execute("select bwdecompose(v, 32) from t")
        first = session.machine.gpu.pool.allocated
        session.execute("select bwdecompose(v, 12) from t")
        second = session.machine.gpu.pool.allocated
        assert second < first  # old approximation was evicted

    def test_queries_track_latest_decomposition(self):
        session = Session()
        session.create_table("t", {"v": IntType()}, {"v": np.arange(10_000)})
        sql = "select count(*) from t where v < 1000"
        session.execute("select bwdecompose(v, 32) from t")
        exact_time = session.execute(sql).timeline.total_seconds()
        session.execute("select bwdecompose(v, 20) from t")
        lossy = session.execute(sql)
        assert lossy.scalar("count_0") == 1000  # still exact after refinement
        assert lossy.timeline.refine_seconds() > 0  # but refinement now runs
        assert exact_time > 0

    def test_oom_leaves_catalog_consistent(self):
        tiny = DeviceSpec(
            name="tiny", kind="gpu", memory_capacity=40_000,
            seq_bandwidth=GTX_680.seq_bandwidth,
            random_bandwidth=GTX_680.random_bandwidth,
            per_tuple=GTX_680.per_tuple,
        )
        session = Session(Machine(gpu_spec=tiny))
        session.create_table("t", {"v": IntType()}, {"v": np.arange(100_000)})
        with pytest.raises(DeviceOutOfMemory):
            session.execute("select bwdecompose(v, 32) from t")
        # lower resolution still fits and works end to end
        session.bwdecompose("t", "v", residual_bits=16)
        result = session.execute("select count(*) from t where v < 5000")
        assert result.scalar("count_0") == 5000


class TestMultiTableWorkflows:
    @pytest.fixture()
    def session(self):
        s = Session()
        rng = np.random.default_rng(9)
        n = 20_000
        s.create_table(
            "sales",
            {
                "store": IntType(),
                "amount": DecimalType(10, 2),
                "day": IntType(),
            },
            {
                "store": rng.integers(0, 8, n),
                "amount": rng.uniform(1, 500, n).round(2),
                "day": rng.integers(0, 365, n),
            },
        )
        s.create_table(
            "stores",
            {"key": IntType(), "region": IntType()},
            {"key": np.arange(8), "region": [0, 0, 1, 1, 2, 2, 3, 3]},
        )
        for col, bits in (("store", 32), ("amount", 18), ("day", 32)):
            s.bwdecompose("sales", col, bits)
        s.bwdecompose("stores", "region", 32)
        return s

    def test_join_group_aggregate_roundtrip(self, session):
        sql = (
            "select stores.region, sum(amount) as revenue, count(*) as n "
            "from sales join stores on sales.store = stores.key "
            "where day between 100 and 200 "
            "group by stores.region"
        )
        ar = session.execute(sql).sorted_by("stores.region")
        classic = session.execute(sql, mode="classic").sorted_by("stores.region")
        assert np.array_equal(ar.column("revenue"), classic.column("revenue"))
        assert np.array_equal(ar.column("n"), classic.column("n"))
        assert ar.row_count == 4

    def test_repeated_queries_accumulate_nothing(self, session):
        sql = "select count(*) from sales where day < 50"
        first = session.execute(sql)
        for _ in range(5):
            again = session.execute(sql)
            assert again.scalar("count_0") == first.scalar("count_0")
            assert again.timeline.total_seconds() == pytest.approx(
                first.timeline.total_seconds()
            )

    def test_all_modes_and_orders_agree(self, session):
        sql = (
            "select sum(amount) as s from sales "
            "where day between 10 and 300 and amount >= 250.00"
        )
        baseline = session.execute(sql, mode="classic").scalar("s")
        for pushdown in (True, False):
            for order in ("query", "selectivity"):
                got = session.execute(
                    sql, pushdown=pushdown, predicate_order=order
                ).scalar("s")
                assert got == baseline, (pushdown, order)

    def test_drop_and_recreate_table(self, session):
        session.catalog.drop("sales")
        assert "sales" not in session.catalog
        with pytest.raises(Exception):
            session.execute("select count(*) from sales")
        session.create_table(
            "sales", {"x": IntType()}, {"x": np.arange(10)}
        )
        session.bwdecompose("sales", "x", 32)
        assert session.execute("select count(*) from sales where x < 5").scalar(
            "count_0"
        ) == 5


class TestErrorSurface:
    def test_sql_errors_carry_position_or_message(self):
        session = Session()
        session.create_table("t", {"v": IntType()}, {"v": np.arange(10)})
        with pytest.raises(SqlError):
            session.execute("select v from t where v like 'x%'")

    def test_timeline_isolation_between_queries(self):
        session = Session()
        session.create_table("t", {"v": IntType()}, {"v": np.arange(1000)})
        session.execute("select bwdecompose(v, 32) from t")
        a = session.execute("select count(*) from t where v < 10")
        b = session.execute("select count(*) from t where v < 999")
        assert len(a.timeline.spans) > 0
        assert a.timeline is not b.timeline
