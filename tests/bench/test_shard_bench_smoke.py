"""Tier-1 smoke for ``python -m repro shard-bench`` (PR 6).

Runs the CLI driver in ``--quick`` shape so the sharded benchmark path
(session construction, partition + repartition, scan and theta sweeps at
several shard counts) cannot rot between perf PRs, and pins the CLI
dispatch through ``repro.__main__``.
"""

from repro.__main__ import main as repro_main
from repro.shard.bench import (
    build_shard_session,
    run_scan_once,
    run_theta_once,
    scan_ranges,
)


def test_shard_bench_quick_cli(capsys):
    assert repro_main(["shard-bench", "--quick", "--shards", "1", "2"]) == 0
    out = capsys.readouterr().out
    assert "shards" in out
    assert "modeled wall" in out


def test_shard_bench_helpers_run():
    session = build_shard_session(4_000, 2)
    ranges = scan_ranges(4_000, 3)
    assert run_scan_once(session, ranges) >= 0.0
    assert run_theta_once(session, ranges) >= 0.0
