"""Tier-1 smoke for ``benchmarks/sweep.py --calibrate``.

Fits the 7-constant sim-host cost model to a quick sweep and checks the
properties calibration is graded on: all constants non-negative (the fit
is NNLS), a finite relative error, and — the actual gate — the fitted
spec changing none of the sweep's optimizer picks (``picks_changed``
empty means the model's *ordering* of alternatives was already right;
calibration only tightens the absolute scale).
"""

import importlib.util
from pathlib import Path

_SWEEP_PATH = Path(__file__).resolve().parents[2] / "benchmarks" / "sweep.py"

_CONSTANT_NAMES = (
    "launch_overhead", "byte_cost",
    "per_tuple.SCAN", "per_tuple.ARITH", "per_tuple.GATHER",
    "per_tuple.HASH", "per_tuple.AGG",
)


def _load_sweep():
    spec = importlib.util.spec_from_file_location(
        "repro_calibrate_smoke", _SWEEP_PATH
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


_sweep = _load_sweep()
_RESULT = _sweep.calibrate(_sweep.sweep(quick=True))


def test_constants_cover_the_model_and_are_nonnegative():
    constants = _RESULT["constants"]
    assert set(constants) == set(_CONSTANT_NAMES)
    for name, value in constants.items():
        assert value >= 0.0, name


def test_relative_error_is_finite_and_sane():
    assert 0.0 <= _RESULT["relative_rms_error"] < 100.0


def test_fitted_spec_changes_no_picks():
    assert _RESULT["picks_changed"] == []


def test_observation_bookkeeping():
    assert _RESULT["observations"] >= _RESULT["cells"] > 0


def test_report_renders():
    text = _sweep.report_calibration(_RESULT)
    for name in _CONSTANT_NAMES:
        assert name in text
    assert "picks" in text
