"""Tests for the EXPERIMENTS.md report generator (small-scale build)."""

import os

import pytest

from repro.bench.report import build_report


@pytest.fixture(scope="module")
def report_text():
    # Tiny scales keep this test fast while exercising every section.
    old = {k: os.environ.get(k) for k in
           ("REPRO_BENCH_N", "REPRO_BENCH_POINTS", "REPRO_BENCH_SF")}
    os.environ["REPRO_BENCH_N"] = "150000"
    os.environ["REPRO_BENCH_POINTS"] = "60000"
    os.environ["REPRO_BENCH_SF"] = "0.002"
    try:
        yield build_report()
    finally:
        for k, v in old.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v


class TestReport:
    def test_every_figure_has_a_section(self, report_text):
        for fig in ("Fig 8a", "Fig 8b", "Fig 8c", "Fig 8d", "Fig 8e",
                    "Fig 8f", "Fig 9", "Fig 10a", "Fig 10b", "Fig 10c",
                    "Fig 11", "Fig 1"):
            assert f"## {fig}" in report_text, fig

    def test_paper_numbers_quoted(self, report_text):
        assert "0.134" in report_text  # Fig 9 A&R seconds
        assert "16.666" in report_text  # Fig 10a MonetDB seconds
        assert "26.0" in report_text  # Fig 11 cumulative throughput

    def test_tables_rendered(self, report_text):
        assert report_text.count("```") >= 24  # one fenced table per figure

    def test_deviations_documented(self, report_text):
        assert "## Summary of deviations" in report_text
        assert "Deviation" in report_text or "deviation" in report_text

    def test_scale_knobs_recorded(self, report_text):
        assert "150,000" in report_text
        assert "60,000" in report_text
