"""Tier-1 smoke coverage for the wall-clock benchmark harness.

``benchmarks/wallclock.py`` is deliberately named so the full-size suite is
not collected by the default pytest run.  This test imports it by path and
executes every benchmark once in ``--quick`` shape, so a refactor that
breaks the harness (renamed kernel, changed signature, stale fixture)
fails tier-1 instead of silently rotting until the next perf PR records a
trajectory.
"""

import importlib.util
from pathlib import Path

import pytest

_WALLCLOCK_PATH = (
    Path(__file__).resolve().parents[2] / "benchmarks" / "wallclock.py"
)


def _load_wallclock():
    spec = importlib.util.spec_from_file_location(
        "repro_wallclock_smoke", _WALLCLOCK_PATH
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


_wallclock = _load_wallclock()


@pytest.mark.parametrize("bench_name", sorted(_wallclock.build_suite(quick=True)))
def test_wallclock_quick_smoke(bench_name):
    _wallclock.build_suite(quick=True)[bench_name]()


def test_quick_measure_reports_every_benchmark():
    results = _wallclock.measure(reps=1, quick=True)
    assert set(results) == set(_wallclock.build_suite(quick=True))
    assert all(v > 0 for v in results.values())


def test_serve_throughput_family_is_in_the_suite():
    """PR 5's scheduler benchmarks must stay collected at every width."""
    suite = set(_wallclock.build_suite(quick=True))
    assert {
        "serve.throughput.b1", "serve.throughput.b4", "serve.throughput.b16"
    } <= suite
