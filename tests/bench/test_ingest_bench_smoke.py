"""Tier-1 smoke for ``python -m repro ingest-bench --quick``.

Drives the mixed 95/5 read/write bench at its small shape and checks the
structural claims it reports on: writes all land, reads never block, the
plan cache hits on the repeated window panel, and the CLI round-trips.
"""

import numpy as np

from repro.ingest.bench import (
    WRITE_EVERY,
    cycled_ranges,
    main,
    run_mixed,
    write_batches,
)
from repro.serve.bench import build_serve_session

N_ROWS = 8_000
N_QUERIES = 40


def test_mixed_run_stats_shape():
    session = build_serve_session(N_ROWS)
    ranges = cycled_ranges(N_ROWS, N_QUERIES)
    batches = write_batches(N_ROWS, N_QUERIES // WRITE_EVERY, batch_rows=16)
    stats = run_mixed(
        session, ranges, batches, max_batch=8, delta_watermark=1 << 30
    )
    assert stats["seconds"] > 0
    assert stats["writes"] == N_QUERIES // WRITE_EVERY
    assert stats["reads_blocked"] == 0
    assert stats["compactions"] == 0  # watermark never reached
    assert stats["cache_hit_rate"] > 0.5  # 12 windows cycled over 40 reads


def test_mixed_run_watermark_triggers_compaction():
    session = build_serve_session(N_ROWS)
    ranges = cycled_ranges(N_ROWS, N_QUERIES)
    batches = write_batches(N_ROWS, N_QUERIES // WRITE_EVERY, batch_rows=16)
    stats = run_mixed(
        session, ranges, batches,
        max_batch=8, delta_watermark=16, max_in_flight=8,
    )
    assert stats["compactions"] >= 1
    assert stats["reads_blocked"] == 0
    assert session.catalog.delta_rows("events") == 0 or (
        session.catalog.delta_rows("events") < 16 + 16
    )


def test_mixed_answers_match_settled_rerun():
    """The mixed run's reads were answered against moving data; after a
    final compaction the same windows re-counted solo must reflect every
    write the run landed."""
    session = build_serve_session(N_ROWS)
    ranges = cycled_ranges(N_ROWS, N_QUERIES)
    batches = write_batches(N_ROWS, N_QUERIES // WRITE_EVERY, batch_rows=16)
    run_mixed(
        session, ranges, batches, max_batch=8, delta_watermark=1 << 30
    )
    session.compact("events")
    values = session.catalog.table("events").values("value")
    for lo, hi in ranges[:len(set(ranges))]:
        r = (
            session.table("events").where("value", between=(lo, hi))
            .count("n").run()
        )
        want = int(((values >= lo) & (values <= hi)).sum())
        assert int(r.columns["n"][0]) == want


def test_quick_cli_runs():
    assert main(["--quick"]) == 0


def test_cycled_ranges_repeat_a_fixed_panel():
    ranges = cycled_ranges(N_ROWS, N_QUERIES)
    assert len(ranges) == N_QUERIES
    assert len(set(ranges)) <= 12
    assert ranges[0] == ranges[12]


def test_write_batches_deterministic():
    a = write_batches(N_ROWS, 3, batch_rows=8)
    b = write_batches(N_ROWS, 3, batch_rows=8)
    assert len(a) == 3
    for x, y in zip(a, b):
        assert np.array_equal(x["value"], y["value"])
