"""Smoke and shape tests for the figure runners at small scale.

The benchmarks re-assert the paper's claims at benchmark scale; these tests
guarantee the runners stay healthy under `pytest tests/` with tiny inputs.
"""

import pytest

from repro.bench import figures
from repro.bench.harness import crossover_x
from repro.workloads.spatial import SpatialConfig
from repro.workloads.tpch import TpchConfig

N = 120_000


class TestFig8Selection:
    def test_fig8a_series_complete(self):
        exp = figures.fig8_selection(N, selectivities=(1, 10, 100))
        assert {s.name for s in exp.series} == {
            "MonetDB", "Approximate + Refine", "Approximate",
            "Stream (Hypothetical)",
        }
        assert all(len(s.points) == 3 for s in exp.series)
        assert crossover_x(exp, "Approximate + Refine", "MonetDB") is None

    def test_fig8b_refinement_visible(self):
        exp = figures.fig8_selection(N, residual_bits=8, selectivities=(1, 60))
        ar = exp.get("Approximate + Refine")
        approx = exp.get("Approximate")
        assert ar.at(60).seconds > approx.at(60).seconds
        assert ar.at(60).breakdown.get("bus", 0) > 0
        assert ar.at(60).breakdown.get("cpu", 0) > 0

    def test_fig8c_runs_with_custom_bits(self):
        exp = figures.fig8c_selection_bits(
            N, selectivities=(5.0, 0.05), bit_range=(10, 14)
        )
        assert exp.get("Approximate + Refine (5%)").xs == [10, 14]
        assert len(exp.series) == 5  # 2x AR + 2x approx + stream


class TestFig8ProjectionGrouping:
    def test_fig8d_monetdb_grows_with_selectivity(self):
        exp = figures.fig8_projection(N, selectivities=(1, 100))
        m = exp.get("MonetDB")
        assert m.at(100).seconds > m.at(1).seconds

    def test_fig8e_distributed_has_bus_cost(self):
        exp = figures.fig8_projection(N, residual_bits=8, selectivities=(50,))
        assert exp.get("Approximate + Refine").at(50).breakdown.get("bus", 0) > 0

    def test_fig8f_conflict_effect(self):
        exp = figures.fig8f_grouping(N, group_counts=(10, 1000))
        ar = exp.get("Approximate + Refine")
        assert ar.at(10).seconds > ar.at(1000).seconds


class TestBarFigures:
    def test_fig9_breakdown_and_agreement(self):
        exp = figures.fig9_spatial(SpatialConfig(n_points=60_000, seed=9))
        ar = exp.get("A & R").points[0]
        assert ar.breakdown.get("gpu", 0) > 0
        assert "classic agrees" in exp.notes

    @pytest.mark.parametrize("q", ["q1", "q6", "q14"])
    def test_fig10_queries_run_and_agree(self, q):
        exp = figures.fig10_tpch(q, TpchConfig(scale_factor=0.001))
        assert "True" in exp.notes
        assert exp.get("A & R").points[0].seconds > 0
        assert exp.get("Stream (Hypothetical)").points[0].seconds > 0

    def test_fig10_unknown_query(self):
        with pytest.raises(KeyError):
            figures.fig10_tpch("q99", TpchConfig(scale_factor=0.001))


class TestFig11:
    def test_throughput_series(self):
        exp = figures.fig11_throughput(
            SpatialConfig(n_points=60_000, seed=4), thread_counts=(1, 2, 32)
        )
        classic = exp.get("Classic (CPU parallel)")
        assert [int(x) for x in classic.xs] == [1, 2, 32]
        qps = {int(p.x): 1 / p.seconds for p in classic.points}
        assert qps[2] > qps[1]
        cumulative = 1 / exp.get("Cumulative").points[0].seconds
        assert cumulative > 1 / exp.get("CPU w/ A&R").points[0].seconds


class TestFig1:
    def test_static_background_data(self):
        exp = figures.fig1_flash_background()
        assert {s.name for s in exp.series} == {"SLC-1", "MLC-1", "MLC-2", "TLC-3"}
        for series in exp.series:
            assert series.seconds == sorted(series.seconds, reverse=True)
