"""Tier-1 smoke for ``python -m repro chaos-bench`` (PR 7).

Runs the fault-injection sweep in ``--quick`` shape so the chaos path
(serving under seeded transient faults, the permanent-crash degradation
scenario, the recording plumbing) cannot rot between PRs, and pins the
CLI dispatch through ``repro.__main__``.
"""

import json

from repro.__main__ import main as repro_main
from repro.faults.bench import record_entries, run_cell, wide_ranges
from repro.faults.profile import FaultProfile


def test_chaos_bench_quick_cli(capsys):
    assert repro_main(["chaos-bench", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "fault rate" in out
    assert "crash s1" in out
    assert "degraded" in out


def test_run_cell_is_deterministic():
    ranges = wide_ranges(10_000, 3)
    profile = FaultProfile(transient_rate=0.2)
    a = run_cell(10_000, 2, ranges, profile, seed=4)
    b = run_cell(10_000, 2, ranges, profile, seed=4)
    assert a == b
    assert a["total"] == 6
    assert a["exact"] + a["degraded"] + a["failed"] == a["total"]


def test_crash_cell_degrades_not_fails():
    ranges = wide_ranges(10_000, 3)
    cell = run_cell(
        10_000, 4, ranges, FaultProfile(crash_shards=frozenset({1})), seed=0
    )
    assert cell["failed"] == 0
    assert cell["degraded"] >= 0.95 * cell["total"]
    assert cell["availability"] == 1.0


def test_record_entries_merges_and_recomputes_speedup(tmp_path):
    out = tmp_path / "BENCH_TEST.json"
    record_entries(out, "before", {"chaos.avail.f0": 1.0, "chaos.tail.p99": 0.004})
    record_entries(out, "after", {"chaos.avail.f0": 1.0, "chaos.tail.p99": 0.002})
    data = json.loads(out.read_text())
    assert data["before"]["chaos.avail.f0"] == 1.0
    assert data["speedup"]["chaos.tail.p99"] == 2.0
    # Merging more entries under a label keeps the existing ones.
    record_entries(out, "after", {"chaos.avail.f10": 0.98})
    data = json.loads(out.read_text())
    assert data["after"]["chaos.tail.p99"] == 0.002
    assert data["after"]["chaos.avail.f10"] == 0.98
