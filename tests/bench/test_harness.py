"""Tests for the experiment/series containers and their rendering."""

import pytest

from repro.bench.harness import Experiment, Point, Series, crossover_x


def make_experiment():
    exp = Experiment(exp_id="figX", title="Test", x_label="selectivity")
    a = exp.new_series("A")
    b = exp.new_series("B")
    for x, (sa, sb) in zip((1, 10, 100), ((0.1, 0.2), (0.2, 0.2), (0.4, 0.3))):
        a.add(x, sa)
        b.add(x, sb)
    return exp


class TestSeries:
    def test_add_and_at(self):
        s = Series("x")
        s.add(1, 0.5, {"gpu": 0.5})
        assert s.at(1).seconds == 0.5
        assert s.at(1).breakdown == {"gpu": 0.5}
        with pytest.raises(KeyError):
            s.at(2)

    def test_xs_and_seconds(self):
        exp = make_experiment()
        assert exp.get("A").xs == [1, 10, 100]
        assert exp.get("A").seconds == [0.1, 0.2, 0.4]


class TestExperiment:
    def test_get_unknown_series(self):
        with pytest.raises(KeyError):
            make_experiment().get("Z")

    def test_speedup_at_x(self):
        exp = make_experiment()
        assert exp.speedup("B", "A", x=1) == pytest.approx(2.0)

    def test_speedup_single_point(self):
        exp = Experiment(exp_id="bar", title="t", x_label="")
        exp.new_series("slow").add(0, 4.0, {"cpu": 4.0})
        exp.new_series("fast").add(0, 1.0, {"gpu": 1.0})
        assert exp.speedup("slow", "fast") == pytest.approx(4.0)

    def test_render_sweep_table(self):
        text = make_experiment().render()
        assert "figX" in text
        assert "selectivity" in text
        assert "100 ms" in text or "100.0" in text or "ms" in text
        # one row per x value
        assert text.count("\n") >= 5

    def test_render_bar_style_appends_breakdown(self):
        exp = Experiment(exp_id="bar", title="t", x_label="")
        exp.new_series("A & R").add(0, 2.0, {"gpu": 1.5, "cpu": 0.5})
        exp.new_series("MonetDB").add(0, 4.0, {"cpu": 4.0})
        text = exp.render()
        assert "GPU" in text and "CPU" in text

    def test_render_handles_missing_points(self):
        exp = Experiment(exp_id="x", title="t", x_label="n")
        exp.new_series("A").add(1, 0.5)
        exp.new_series("B").add(2, 0.7)
        text = exp.render()
        assert "—" in text

    def test_notes_rendered(self):
        exp = make_experiment()
        exp.notes = "calibration note"
        assert "calibration note" in exp.render()


class TestCrossover:
    def test_crossover_found(self):
        exp = make_experiment()
        # A beats B at x=1, ties at 10 → crossover (>=) at 10
        assert crossover_x(exp, "A", "B") == 10

    def test_no_crossover(self):
        exp = Experiment(exp_id="y", title="t", x_label="n")
        a = exp.new_series("A")
        b = exp.new_series("B")
        for x in (1, 2):
            a.add(x, 0.1)
            b.add(x, 0.9)
        assert crossover_x(exp, "A", "B") is None
