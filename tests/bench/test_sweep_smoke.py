"""Tier-1 smoke coverage for the PR-8 optimizer sweep harness.

Runs ``benchmarks/sweep.py`` in its ``--quick`` shape (4 cells) and checks
the acceptance criteria the full sweep is graded on: the cost-based pick
matches the empirically fastest forced strategy in ≥ 80 % of cells, its
chosen plan is never more than 1.5× slower than the fastest alternative
in any cell, and at least one cell beats the old heuristic by ≥ 1.2× —
with every variant in every cell returning the identical count (the sweep
itself asserts that and raises otherwise).
"""

import importlib.util
from pathlib import Path

_SWEEP_PATH = Path(__file__).resolve().parents[2] / "benchmarks" / "sweep.py"


def _load_sweep():
    spec = importlib.util.spec_from_file_location("repro_sweep_smoke", _SWEEP_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


_sweep = _load_sweep()
_DATA = _sweep.sweep(quick=True)


def test_quick_sweep_shape():
    assert _DATA["meta"]["quick"] is True
    assert len(_DATA["cells"]) == (
        len(_sweep.QUICK_SELECTIVITIES)
        * len(_sweep.SKEWS)
        * len(_sweep.QUICK_RIGHT_RATIOS)
    )
    for cell in _DATA["cells"]:
        assert set(cell["timings_ms"]) == {
            "bruteforce+pairs", "sorted+pairs", "sorted+runs",
            "heuristic", "optimizer",
        }


def test_pick_matches_fastest_in_most_cells():
    assert _DATA["summary"]["match_rate"] >= 0.80


def test_pick_never_far_from_fastest():
    assert _DATA["summary"]["worst_ratio"] <= 1.5


def test_optimizer_beats_heuristic_somewhere():
    """≥ 1 cell where the cost-based pick wins ≥ 1.2× end to end.

    The win region is the small right side: the heuristic's cardinality
    cutoff picks brute force there, while the estimator sees few enough
    candidate pairs to know the sorted sweep wins.
    """
    assert _DATA["summary"]["best_gain_over_heuristic"] >= 1.2


def test_markdown_reporter_renders():
    text = _sweep.render_markdown(_DATA)
    assert "match rate" in text
    assert "| sel |" in text
    for cell in _DATA["cells"]:
        assert cell["chosen"] in text
