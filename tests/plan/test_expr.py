"""Tests for expression trees: exact evaluation, interval propagation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import IntervalColumn
from repro.core.relax import ValueRange
from repro.errors import PlanError
from repro.plan.expr import BinOp, Case, ColRef, Const, Neg, Predicate


def exact_resolver(env):
    return lambda name: np.asarray(env[name], dtype=np.int64)


def interval_resolver(env):
    def resolve(name):
        lo, hi = env[name]
        return IntervalColumn.from_bounds(np.asarray(lo), np.asarray(hi))
    return resolve


class TestExactEvaluation:
    def test_column_and_const(self):
        expr = ColRef("x") + Const(5)
        out = expr.eval_exact(exact_resolver({"x": [1, 2]}))
        assert np.array_equal(out, [6, 7])

    def test_arithmetic_combination(self):
        # price * (1 - disc): the Q1/Q14 revenue shape
        expr = ColRef("price") * (Const(100) - ColRef("disc"))
        out = expr.eval_exact(exact_resolver({"price": [200], "disc": [5]}))
        assert np.array_equal(out, [200 * 95])

    def test_negation(self):
        out = Neg(ColRef("x")).eval_exact(exact_resolver({"x": [3, -4]}))
        assert np.array_equal(out, [-3, 4])

    def test_operator_sugar_with_ints(self):
        expr = ColRef("x") - 2
        assert isinstance(expr, BinOp)
        assert np.array_equal(expr.eval_exact(exact_resolver({"x": [5]})), [3])

    def test_invalid_operand_rejected(self):
        with pytest.raises(PlanError):
            ColRef("x") + "nope"

    def test_invalid_operator_rejected(self):
        with pytest.raises(PlanError):
            BinOp("%", ColRef("x"), Const(2))

    def test_columns_collection(self):
        expr = (ColRef("a") + ColRef("b")) * ColRef("a")
        assert expr.columns() == {"a", "b"}

    def test_case_exact(self):
        pred = Predicate(ColRef("t"), ValueRange(1, 2))
        expr = Case(pred, ColRef("x"), Const(0))
        out = expr.eval_exact(exact_resolver({"t": [0, 1, 2, 3], "x": [10, 11, 12, 13]}))
        assert np.array_equal(out, [0, 11, 12, 0])

    def test_repr_readable(self):
        expr = ColRef("price") * (Const(1) - ColRef("disc"))
        assert "price" in repr(expr) and "*" in repr(expr)


class TestIntervalEvaluation:
    def test_add_scalar_folding(self):
        expr = ColRef("x") + Const(10)
        iv = expr.eval_interval(interval_resolver({"x": ([1, 2], [3, 4])}))
        assert np.array_equal(iv.lo, [11, 12])
        assert np.array_equal(iv.hi, [13, 14])

    def test_const_minus_column(self):
        expr = Const(100) - ColRef("x")
        iv = expr.eval_interval(interval_resolver({"x": ([1], [5])}))
        assert (iv.lo[0], iv.hi[0]) == (95, 99)

    def test_product_bounds(self):
        expr = ColRef("x") * ColRef("y")
        iv = expr.eval_interval(
            interval_resolver({"x": ([2], [3]), "y": ([10], [20])})
        )
        assert (iv.lo[0], iv.hi[0]) == (20, 60)

    def test_case_interval_hull(self):
        pred = Predicate(ColRef("t"), ValueRange(10, 20))
        expr = Case(pred, ColRef("x"), Const(0))
        env = {
            # row0: certainly in range; row1: certainly out; row2: undecided
            "t": ([12, 30, 5], [15, 40, 15]),
            "x": ([100, 100, 100], [110, 110, 110]),
        }
        iv = expr.eval_interval(interval_resolver(env))
        assert (iv.lo[0], iv.hi[0]) == (100, 110)  # THEN bounds
        assert (iv.lo[1], iv.hi[1]) == (0, 0)  # ELSE bounds
        assert (iv.lo[2], iv.hi[2]) == (0, 110)  # hull


class TestPredicate:
    def test_exact_and_negated(self):
        pred = Predicate(ColRef("x"), ValueRange(5, 10))
        env = exact_resolver({"x": [4, 5, 10, 11]})
        assert np.array_equal(pred.evaluate_exact(env), [False, True, True, False])
        neg = Predicate(ColRef("x"), ValueRange(5, 10), negated=True)
        assert np.array_equal(neg.evaluate_exact(env), [True, False, False, True])

    def test_candidate_and_certain_masks(self):
        pred = Predicate(ColRef("x"), ValueRange(10, 20))
        env = interval_resolver({"x": ([5, 12, 25], [9, 15, 30])})
        assert np.array_equal(pred.candidate_mask(env), [False, True, False])
        assert np.array_equal(pred.certain_mask(env), [False, True, False])

    def test_negated_masks_swap_roles(self):
        pred = Predicate(ColRef("x"), ValueRange(10, 20), negated=True)
        env = interval_resolver({"x": ([5, 12, 8], [9, 15, 12])})
        # row2 straddles the boundary: candidate for NE, not certain
        assert np.array_equal(pred.candidate_mask(env), [True, False, True])
        assert np.array_equal(pred.certain_mask(env), [True, False, False])

    def test_is_simple_column(self):
        assert Predicate(ColRef("x"), ValueRange(0, 1)).is_simple_column
        assert not Predicate(ColRef("x"), ValueRange(0, 1), negated=True).is_simple_column
        assert not Predicate(ColRef("x") + Const(1), ValueRange(0, 1)).is_simple_column


@settings(max_examples=80, deadline=None)
@given(
    lo=st.integers(-100, 100), width=st.integers(0, 50),
    c=st.integers(-20, 20), seed=st.integers(0, 2**31 - 1),
)
def test_property_interval_eval_brackets_exact_eval(lo, width, c, seed):
    """For any expression over bracketed inputs, exact result ∈ interval."""
    rng = np.random.default_rng(seed)
    exact = rng.integers(lo, lo + width + 1, 20)
    slack_lo = rng.integers(0, 5, 20)
    slack_hi = rng.integers(0, 5, 20)
    expr = (ColRef("x") + Const(c)) * (Const(2) - ColRef("x"))
    out_exact = expr.eval_exact(exact_resolver({"x": exact}))
    iv = expr.eval_interval(
        interval_resolver({"x": (exact - slack_lo, exact + slack_hi)})
    )
    assert np.all(iv.lo <= out_exact)
    assert np.all(out_exact <= iv.hi)
