"""Rewriter lowering and EXPLAIN coverage for theta-join plans (PR 4)."""

import numpy as np
import pytest

from repro.core.relax import ValueRange
from repro.engine.session import Session
from repro.errors import PlanError
from repro.plan.expr import BinOp, ColRef, Const, Predicate
from repro.plan.explain import explain
from repro.plan.logical import Aggregate, Query, ThetaJoin
from repro.plan.physical import (
    ApproxPairAggregate,
    ApproxScanSelect,
    ApproxThetaJoin,
    PhysicalPlan,
    RefinePairAggregate,
    RefinePairGroup,
    RefinePairSelect,
    RefineThetaJoin,
    ShipPairs,
)
from repro.plan.rewriter import rewrite_to_ar_plan
from repro.storage.column import IntType


@pytest.fixture()
def session():
    s = Session()
    rng = np.random.default_rng(3)
    s.create_table(
        "orders",
        {"price": IntType(), "qty": IntType()},
        {
            "price": rng.integers(0, 2000, 300),
            "qty": rng.integers(0, 5, 300),
        },
    )
    s.create_table(
        "quotes", {"price": IntType()}, {"price": rng.integers(0, 2000, 100)}
    )
    s.bwdecompose("orders", "price", residual_bits=4)
    s.bwdecompose("quotes", "price", residual_bits=4)
    return s


def theta_query(**kwargs):
    defaults = dict(
        table="orders",
        theta_joins=(ThetaJoin("price", "quotes", "price", "within", 16),),
    )
    defaults.update(kwargs)
    return Query(**defaults)


class TestThetaLowering:
    def test_bare_join_plan_shape(self, session):
        plan = rewrite_to_ar_plan(theta_query(), session.catalog)
        assert [type(op) for op in plan.ops] == [
            ApproxThetaJoin, ShipPairs, RefineThetaJoin,
        ]
        plan.validate()  # idempotent; the A&R prefix invariant holds

    def test_full_block_plan_shape(self, session):
        query = theta_query(
            where=(
                Predicate(ColRef("price"), ValueRange(100, 1500)),  # drivable
                Predicate(ColRef("qty"), ValueRange(1, 1), negated=True),  # host
            ),
            group_by=("qty",),
            aggregates=(Aggregate("count", None, "n"),),
        )
        plan = rewrite_to_ar_plan(query, session.catalog)
        kinds = [type(op) for op in plan.ops]
        assert kinds == [
            ApproxScanSelect,       # drivable selection under the join
            ApproxThetaJoin,
            ApproxPairAggregate,    # free approximate answer
            ShipPairs,
            RefinePairSelect,       # residual re-check of the drivable pred
            RefinePairSelect,       # host-only predicate
            RefineThetaJoin,
            RefinePairGroup,
            RefinePairAggregate,
        ]

    def test_exact_device_column_skips_pair_reselect(self, session):
        """residual_bits=0 → the approximate selection is already exact."""
        session.bwdecompose("orders", "qty", residual_bits=0)
        query = theta_query(
            where=(Predicate(ColRef("qty"), ValueRange(1, 3)),),
        )
        plan = rewrite_to_ar_plan(query, session.catalog)
        assert not any(isinstance(op, RefinePairSelect) for op in plan.ops)

    def test_undecomposed_join_side_rejected(self, session):
        query = theta_query(
            theta_joins=(ThetaJoin("qty", "quotes", "price", "<"),),
        )
        with pytest.raises(PlanError):
            rewrite_to_ar_plan(query, session.catalog)

    def test_no_pushdown_rejected(self, session):
        with pytest.raises(PlanError):
            rewrite_to_ar_plan(theta_query(), session.catalog, pushdown=False)

    def test_expression_aggregate_over_pairs(self, session):
        """Aggregates over left-side expressions survive the lowering."""
        query = theta_query(
            aggregates=(
                Aggregate("sum", BinOp("*", ColRef("price"), Const(2)), "t"),
            ),
        )
        ar = session.query(query, mode="ar")
        classic = session.query(query, mode="classic")
        assert ar.scalar("t") == classic.scalar("t")


class TestExplainCoverage:
    def test_every_theta_operator_renders(self, session):
        query = theta_query(
            where=(Predicate(ColRef("price"), ValueRange(100, 1500)),),
            group_by=("qty",),
            aggregates=(Aggregate("count", None, "n"),),
        )
        text = session.explain(query)
        assert "bwd.thetajoinapproximate(|price - quotes.price| <= 16)" in text
        assert "──── PCI-E ────  bwd.ship(pairs)" in text
        assert "bwd.thetajoinrefine(within)" in text
        assert "cpu.grouppairs(qty)" in text
        assert "cpu.countpairs() -> n" in text
        # every plan line carries a phase tag or the bus marker
        for line in text.splitlines()[1:]:
            assert line.startswith(("  [approx]", "  [refine]", "  ──── PCI-E"))

    def test_unknown_plan_node_raises_plan_error(self, session):
        plan = rewrite_to_ar_plan(theta_query(), session.catalog)
        bad = PhysicalPlan(
            query=plan.query, ops=plan.ops + ["not an op"], pushdown=True
        )
        with pytest.raises(PlanError, match="str"):
            explain(bad)
