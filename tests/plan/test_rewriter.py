"""Tests for the bwd_pipe rewriter: plan shape, pushdown, validation."""

import numpy as np
import pytest

from repro.core.relax import ValueRange
from repro.errors import PlanError
from repro.plan.expr import ColRef, Const, Predicate
from repro.plan.explain import explain
from repro.plan.logical import Aggregate, FkJoin, Query
from repro.plan.physical import (
    AllRows,
    ApproxFkJoin,
    ApproxGroup,
    ApproxProbeSelect,
    ApproxProject,
    ApproxScanSelect,
    CpuProject,
    CpuSelect,
    PhysicalPlan,
    RefineAggregate,
    RefineGroup,
    RefineSelect,
    ShipCandidates,
)
from repro.plan.rewriter import rewrite_to_ar_plan
from repro.storage.catalog import Catalog
from repro.storage.relation import Relation, int_schema


@pytest.fixture()
def catalog():
    cat = Catalog()
    rng = np.random.default_rng(0)
    n = 500
    cat.register(
        Relation.create(
            "fact",
            int_schema("a", "b", "c", "fk", "plain"),
            {
                "a": rng.integers(0, 1000, n),
                "b": rng.integers(0, 1000, n),
                "c": rng.integers(0, 100, n),
                "fk": rng.integers(0, 16, n),
                "plain": rng.integers(0, 50, n),
            },
        )
    )
    cat.register(
        Relation.create(
            "dim", int_schema("key", "payload"),
            {"key": np.arange(16), "payload": rng.integers(0, 99, 16)},
        )
    )
    cat.bwdecompose("fact", "a", 24)
    cat.bwdecompose("fact", "b", 24)
    cat.bwdecompose("fact", "c", 32)  # fully device-resident
    cat.bwdecompose("fact", "fk", 32)
    cat.bwdecompose("dim", "payload", 32)
    return cat


def pred(col, lo, hi):
    return Predicate(ColRef(col), ValueRange(lo, hi))


def op_types(plan: PhysicalPlan) -> list[type]:
    return [type(op) for op in plan.ops]


class TestPlanShape:
    def test_single_selection(self, catalog):
        q = Query(table="fact", where=(pred("a", 0, 100),), select=("a",))
        plan = rewrite_to_ar_plan(q, catalog)
        types = op_types(plan)
        assert types[0] is ApproxScanSelect
        assert ShipCandidates in types
        assert RefineSelect in types

    def test_conjunction_scan_then_probes(self, catalog):
        q = Query(
            table="fact",
            where=(pred("a", 0, 100), pred("b", 50, 60)),
            select=("a",),
        )
        plan = rewrite_to_ar_plan(q, catalog)
        types = op_types(plan)
        assert types[0] is ApproxScanSelect
        assert types[1] is ApproxProbeSelect

    def test_no_drivable_predicate_seeds_all_rows(self, catalog):
        q = Query(
            table="fact", where=(pred("plain", 0, 10),), select=("plain",)
        )
        plan = rewrite_to_ar_plan(q, catalog)
        types = op_types(plan)
        assert types[0] is AllRows
        assert CpuSelect in types
        assert CpuProject in types  # plain column gathered on host

    def test_fully_resident_predicate_needs_no_refine_select(self, catalog):
        q = Query(table="fact", where=(pred("c", 0, 10),), aggregates=(
            Aggregate("count", None, "n"),
        ))
        plan = rewrite_to_ar_plan(q, catalog)
        assert RefineSelect not in op_types(plan)

    def test_group_by_gets_both_halves(self, catalog):
        q = Query(
            table="fact",
            where=(pred("a", 0, 500),),
            group_by=("c",),
            aggregates=(Aggregate("count", None, "n"),),
        )
        plan = rewrite_to_ar_plan(q, catalog)
        types = op_types(plan)
        assert ApproxGroup in types
        assert RefineGroup in types
        assert RefineAggregate in types

    def test_fk_join_emits_approx_join(self, catalog):
        q = Query(
            table="fact",
            joins=(FkJoin("fk", "dim"),),
            where=(pred("a", 0, 500),),
            aggregates=(
                Aggregate("sum", ColRef("dim.payload"), "s"),
            ),
        )
        plan = rewrite_to_ar_plan(q, catalog)
        assert ApproxFkJoin in op_types(plan)

    def test_aggregate_over_resident_column_skips_exact_projection(self, catalog):
        q = Query(
            table="fact",
            where=(pred("c", 0, 50),),
            aggregates=(Aggregate("sum", ColRef("c"), "s"),),
        )
        plan = rewrite_to_ar_plan(q, catalog)
        types = op_types(plan)
        assert ApproxProject in types
        from repro.plan.physical import RefineProject

        assert RefineProject not in types

    def test_aggregate_over_distributed_column_needs_refine_project(self, catalog):
        q = Query(
            table="fact",
            where=(pred("c", 0, 50),),
            aggregates=(Aggregate("sum", ColRef("a"), "s"),),
        )
        plan = rewrite_to_ar_plan(q, catalog)
        from repro.plan.physical import RefineProject

        assert RefineProject in op_types(plan)


class TestPushdown:
    def test_pushdown_approx_prefix(self, catalog):
        q = Query(
            table="fact",
            where=(pred("a", 0, 100), pred("b", 0, 100)),
            select=("a",),
        )
        plan = rewrite_to_ar_plan(q, catalog, pushdown=True)
        phases = [op.phase for op in plan.ops]
        first_refine = phases.index("refine")
        assert all(p == "refine" for p in phases[first_refine:])
        assert sum(isinstance(op, ShipCandidates) for op in plan.ops) == 1

    def test_no_pushdown_interleaves_and_ships_repeatedly(self, catalog):
        q = Query(
            table="fact",
            where=(pred("a", 0, 100), pred("b", 0, 100)),
            select=("a",),
        )
        plan = rewrite_to_ar_plan(q, catalog, pushdown=False)
        ships = sum(isinstance(op, ShipCandidates) for op in plan.ops)
        assert ships >= 2  # one per selection plus the final one

    def test_validation_rejects_approx_after_refine_under_pushdown(self, catalog):
        q = Query(table="fact", where=(pred("a", 0, 1),), select=("a",))
        plan = rewrite_to_ar_plan(q, catalog)
        # Manually corrupt the plan: approximate op after a refine op.
        plan.ops.append(ApproxScanSelect("a", pred("a", 0, 1)))
        with pytest.raises(PlanError):
            plan.validate()

    def test_validation_requires_ship(self, catalog):
        q = Query(table="fact", where=(pred("a", 0, 1),), select=("a",))
        plan = rewrite_to_ar_plan(q, catalog)
        plan.ops = [op for op in plan.ops if not isinstance(op, ShipCandidates)]
        with pytest.raises(PlanError):
            plan.validate()


class TestExplain:
    def test_explain_mentions_operators_and_bus(self, catalog):
        q = Query(
            table="fact",
            where=(pred("a", 0, 100),),
            group_by=("c",),
            aggregates=(Aggregate("sum", ColRef("b"), "s"),),
        )
        text = explain(rewrite_to_ar_plan(q, catalog))
        assert "uselectapproximate" in text
        assert "uselectrefine" in text
        assert "PCI-E" in text
        assert "groupapproximate" in text
        assert "sumrefine" in text

    def test_explain_marks_pushdown_state(self, catalog):
        q = Query(table="fact", where=(pred("a", 0, 1),), select=("a",))
        assert "pushdown=on" in explain(rewrite_to_ar_plan(q, catalog))
        assert "pushdown=off" in explain(
            rewrite_to_ar_plan(q, catalog, pushdown=False)
        )


class TestQueryValidation:
    def test_query_needs_output(self):
        with pytest.raises(PlanError):
            Query(table="t")

    def test_group_by_needs_aggregates(self):
        with pytest.raises(PlanError):
            Query(table="t", group_by=("a",), select=("a",))

    def test_duplicate_aliases_rejected(self):
        with pytest.raises(PlanError):
            Query(
                table="t",
                aggregates=(
                    Aggregate("count", None, "x"),
                    Aggregate("count", None, "x"),
                ),
            )

    def test_unknown_agg_func(self):
        with pytest.raises(PlanError):
            Aggregate("median", ColRef("a"), "m")

    def test_count_requires_no_arg_others_do(self):
        with pytest.raises(PlanError):
            Aggregate("sum", None, "s")

    def test_referenced_columns(self, catalog):
        q = Query(
            table="fact",
            joins=(FkJoin("fk", "dim"),),
            where=(pred("a", 0, 1),),
            group_by=("c",),
            aggregates=(Aggregate("sum", ColRef("dim.payload"), "s"),),
        )
        assert q.referenced_columns() == {"a", "c", "fk", "dim.payload"}
