"""Tier-1 lint: every op label charged on a Timeline is declared.

Runs a workload sweep touching every engine (approximate GPU kernels,
CPU refinement, the classic bulk engine, theta strategies, grouping,
FK joins, projections, sharded execution with retries and merges,
delta-union ingestion) and asserts each charged span's ``op`` string
canonicalizes into :data:`repro.obs.opnames.DECLARED`.  A renamed or
new kernel label fails here until it is declared — ledger names cannot
drift silently.
"""

import numpy as np

from repro.engine.session import Session
from repro.faults.policy import RetryPolicy
from repro.faults.profile import FaultProfile
from repro.obs.opnames import DECLARED, canonical, is_declared, undeclared
from repro.shard.session import ShardedSession
from repro.storage.column import IntType

DOMAIN = 1 << 20


def _solo_ops() -> set[str]:
    rng = np.random.default_rng(41)
    n = 6_000
    s = Session()
    s.create_table(
        "fact", {"v": IntType(), "g": IntType(), "fk": IntType()},
        {
            "v": rng.integers(0, DOMAIN, n),
            "g": rng.integers(0, 5, n),
            "fk": rng.integers(0, 50, n),
        },
    )
    s.create_table(
        "dim", {"id": IntType(), "w": IntType()},
        {"id": np.arange(50), "w": rng.integers(0, 1000, 50)},
    )
    s.create_table(
        "R", {"v": IntType()}, {"v": rng.integers(0, DOMAIN, 150)}
    )
    s.bwdecompose("fact", "v", 24)
    s.bwdecompose("R", "v", 24)

    ops: set[str] = set()

    def collect(result):
        ops.update(span.op for span in result.timeline.spans)

    base = s.table("fact").where("v", between=(10_000, 800_000))
    for mode in ("ar", "classic", "approximate"):
        collect(base.count("n").run(mode=mode))
        collect(base.sum("v", "sv").avg("v", "av")
                .min("v", "mn").max("v", "mx").run(mode=mode))
        collect(base.group_by("g").count("n").run(mode=mode))
        collect(base.select("v", "g").run(mode=mode))
        collect(
            s.table("fact").where("v", between=(0, 300_000))
            .join("dim", fk="fk").group_by("dim.w").count("n")
            .run(mode=mode)
        )
    for strategy, emit in (
        ("bruteforce", "pairs"), ("sorted", "pairs"), ("sorted", "runs"),
    ):
        for mode in ("ar", "approximate", "classic"):
            collect(
                base.theta_join(
                    "R", on="v", op="<", strategy=strategy, emit=emit
                ).count("n").run(mode=mode)
            )
    return ops


def _sharded_ops() -> set[str]:
    rng = np.random.default_rng(43)
    s = ShardedSession(4, retry_policy=RetryPolicy())
    s.create_table(
        "fact", {"v": IntType()},
        {"v": rng.integers(0, DOMAIN, 20_000).astype(np.int64)},
    )
    s.bwdecompose("fact", "v", 24)
    s.inject_faults(FaultProfile(transient_rate=0.4), seed=5)
    ops: set[str] = set()
    for lo, hi in ((0, 400_000), (100_000, 900_000)):
        for mode in ("ar", "classic"):
            r = (
                s.table("fact").where("v", between=(lo, hi))
                .count("n").run(mode=mode)
            )
            ops.update(span.op for span in r.timeline.spans)
    return ops


def _delta_ops() -> set[str]:
    rng = np.random.default_rng(47)
    s = Session()
    s.create_table(
        "fact", {"v": IntType(), "g": IntType()},
        {
            "v": rng.integers(0, DOMAIN, 5_000),
            "g": rng.integers(0, 4, 5_000),
        },
    )
    s.bwdecompose("fact", "v", 24)
    s.append("fact", {
        "v": rng.integers(0, DOMAIN, 300),
        "g": rng.integers(0, 4, 300),
    })
    ops: set[str] = set()
    base = s.table("fact").where("v", between=(0, 700_000))
    for mode in ("ar", "classic", "approximate"):
        r = base.count("n").run(mode=mode)
        ops.update(span.op for span in r.timeline.spans)
    r = base.avg("v", "av").run(mode="classic")
    ops.update(span.op for span in r.timeline.spans)
    return ops


def test_every_charged_op_is_declared():
    charged = _solo_ops() | _sharded_ops() | _delta_ops()
    assert charged, "workload sweep charged nothing — broken harness"
    assert undeclared(charged) == []


def test_canonicalization_examples():
    assert canonical("select.approx(fact.v)") == "select.approx"
    assert canonical("fault.retry.backoff[shard 2]") == "fault.retry.backoff"
    assert canonical("load:fact.v") == "load"
    assert canonical("cpu.selectv in [1, 5]") == "cpu.select"
    assert canonical("ingest.delta.cpu.selectv < 3") == (
        "ingest.delta.cpu.select"
    )
    assert canonical("ingest.delta.merge") == "ingest.delta.merge"
    assert is_declared("sim.anything.goes")
    assert not is_declared("made.up.op")


def test_registry_is_sorted_within_itself():
    names = list(DECLARED)
    assert len(names) == len(set(names))
    for name in names:
        assert canonical(name) == name, name
