"""Acceptance: one serve run exports one valid Chrome trace with everything.

A 4-shard session with transient faults, a forced straggler (hedge) and
delta rows in flight serves a small workload; the tracer must export a
single valid Chrome-trace-event JSON containing every fragment attempt,
retry backoff, hedge, merge and delta span — each carrying wall-clock
*and* modeled durations — plus flow events linking retries and hedges.
"""

import json

import numpy as np
import pytest

from repro.faults.policy import RetryPolicy
from repro.faults.profile import FaultProfile
from repro.obs.trace import Tracer
from repro.shard.session import ShardedSession
from repro.storage.column import IntType

DOMAIN = 1 << 20


@pytest.fixture(scope="module")
def exported(tmp_path_factory):
    rng = np.random.default_rng(3)
    s = ShardedSession(4, retry_policy=RetryPolicy())
    s.create_table(
        "fact", {"v": IntType()},
        {"v": rng.integers(0, DOMAIN, 60_000).astype(np.int64)},
    )
    s.bwdecompose("fact", "v", 24)
    tracer = Tracer(slow_ms=0.0)
    s.attach_tracer(tracer)
    inj = s.inject_faults(FaultProfile(transient_rate=0.35), seed=11)
    s.append("fact", {"v": rng.integers(0, DOMAIN, 800).astype(np.int64)})

    inj.slow_next(3, 50.0)  # force one hedged fragment
    with s.serve(max_batch=4, optimizer="cost") as server:
        handles = [
            s.table("fact").where("v", between=(lo, hi)).count("n")
            .submit(server)
            for lo, hi in (
                (0, 500_000), (100_000, 800_000),
                (200_000, 900_000), (0, DOMAIN),
            )
        ]
        server.drain()
        results = [h.result() for h in handles]

    path = tmp_path_factory.mktemp("trace") / "serve.json"
    n_events = tracer.export(path)
    assert n_events > 0
    with open(path) as fh:
        doc = json.load(fh)
    return s, tracer, doc, results


def _spans(doc):
    return [e for e in doc["traceEvents"] if e["ph"] == "X"]


def test_export_is_valid_chrome_trace(exported):
    _, _, doc, results = exported
    assert all(r.row_count == 1 for r in results)
    events = doc["traceEvents"]
    assert isinstance(events, list) and events
    for e in events:
        assert e["ph"] in ("X", "M", "i", "s", "f")
        if e["ph"] != "M":
            assert e["ts"] >= 0
        assert "pid" in e and "tid" in e
    assert doc["displayTimeUnit"] == "ms"


def test_every_attempt_backoff_hedge_merge_delta_present(exported):
    s, _, doc, _ = exported
    names = [e["name"] for e in _spans(doc)]
    attempts = [n for n in names if n.startswith("attempt ")]
    # Every fragment attempt the executor billed appears as a span:
    # successes plus every retried failure, on every traced query.
    assert len(attempts) >= 4
    assert any(n == "fault.retry.backoff" for n in names)
    assert any(n == "hedge.attempt" for n in names)
    assert any(n == "shard.merge" for n in names)
    assert any(n.startswith("ingest.delta.") for n in names)
    # Instants mark the hedge decision.
    instants = [e["name"] for e in doc["traceEvents"] if e["ph"] == "i"]
    assert "hedge.launch" in instants and "hedge.resolved" in instants


def test_spans_carry_both_clocks(exported):
    _, _, doc, _ = exported
    spans = _spans(doc)
    assert all("wall_ms" in e["args"] for e in spans)
    backoffs = [e for e in spans if e["name"] == "fault.retry.backoff"]
    assert backoffs
    for e in backoffs:
        assert e["args"]["modeled_ms"] > 0
    # The modeled ledger is laid out on its own tracks (odd pids).
    modeled_pids = {e["pid"] for e in spans if e["pid"] % 2 == 1}
    assert modeled_pids


def test_retry_and_hedge_flows_link(exported):
    _, _, doc, _ = exported
    starts = [e for e in doc["traceEvents"] if e["ph"] == "s"]
    finishes = [e for e in doc["traceEvents"] if e["ph"] == "f"]
    assert starts and finishes
    assert {e["id"] for e in starts} & {e["id"] for e in finishes}


def test_metrics_and_slow_log_populated(exported):
    _, tracer, _, _ = exported
    snap = tracer.metrics.snapshot()
    assert snap["counters"]["serve.completed"] == 4
    assert snap["counters"]["serve.retries"] > 0
    assert snap["counters"]["trace.roots"] >= 1
    assert "serve.queue.depth" in snap["gauges"]
    # slow_ms=0 arms the slow-query log for everything.
    assert len(tracer.slow_log.entries) >= 1
    rendered = tracer.slow_log.render()
    assert "slow" in rendered
