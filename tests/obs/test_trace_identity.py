"""Property tests: tracing is an observer, never a participant.

The PR-10 invariant — enabling a :class:`repro.obs.trace.Tracer` leaves
every Result and every modeled Timeline byte-identical to the untraced
run — across execution mode × forced theta strategy/emit, under an
aggressively evicting decoded-view budget, under injected transient
faults on a 4-shard session, and through the serving scheduler with
delta rows in flight.  Each arm builds a fresh identically-seeded world
(the fault injector is stateful; sharing one session across arms would
compare different fault decisions, not tracing).
"""

import numpy as np
import pytest

from repro.engine.session import Session
from repro.faults.policy import RetryPolicy
from repro.faults.profile import FaultProfile
from repro.obs.trace import Tracer
from repro.shard.session import ShardedSession
from repro.storage.column import IntType
from repro.storage.decompose import set_view_budget

DOMAIN = 1 << 20
MODES = ("ar", "classic", "approximate")
FORCED = (
    ("bruteforce", "pairs"),
    ("sorted", "pairs"),
    ("sorted", "runs"),
)


def _solo_session(seed=3):
    rng = np.random.default_rng(seed)
    s = Session()
    s.create_table(
        "L", {"v": IntType(), "g": IntType()},
        {
            "v": rng.integers(0, DOMAIN, 8_000),
            "g": rng.integers(0, 4, 8_000),
        },
    )
    s.create_table(
        "R", {"v": IntType()}, {"v": rng.integers(0, DOMAIN, 200)}
    )
    s.bwdecompose("L", "v", 24)
    s.bwdecompose("R", "v", 24)
    return s


def _sharded_session(seed=9):
    rng = np.random.default_rng(seed)
    s = ShardedSession(4, retry_policy=RetryPolicy())
    s.create_table(
        "fact", {"v": IntType()},
        {"v": rng.integers(0, DOMAIN, 40_000).astype(np.int64)},
    )
    s.bwdecompose("fact", "v", 24)
    return s


def assert_identical(a, b):
    assert a.row_count == b.row_count
    assert set(a.columns) == set(b.columns)
    for name in a.columns:
        np.testing.assert_array_equal(a.columns[name], b.columns[name])
    assert a.timeline.span_tuples() == b.timeline.span_tuples()


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("strategy,emit", FORCED)
def test_traced_solo_theta_identical(mode, strategy, emit):
    def run(traced):
        s = _solo_session()
        if traced:
            s.attach_tracer(Tracer())
        return (
            s.table("L")
            .where("v", between=(50_000, 900_000))
            .theta_join("R", on="v", op="<", strategy=strategy, emit=emit)
            .count("n")
            .run(mode=mode)
        )

    assert_identical(run(True), run(False))


@pytest.mark.parametrize("mode", MODES)
def test_traced_identical_under_evicting_view_budget(mode):
    def run(traced):
        s = _solo_session()
        if traced:
            s.attach_tracer(Tracer())
        set_view_budget(64 * 1024, segment_rows=2048)
        try:
            return (
                s.table("L")
                .where("v", between=(10_000, 700_000))
                .group_by("g")
                .count("n")
                .run(mode=mode)
            )
        finally:
            set_view_budget(None)

    assert_identical(run(True), run(False))


@pytest.mark.parametrize("mode", ("ar", "classic"))
def test_traced_sharded_identical_under_transient_faults(mode):
    def run(traced):
        s = _sharded_session()
        if traced:
            s.attach_tracer(Tracer())
        s.inject_faults(FaultProfile(transient_rate=0.4), seed=5)
        return (
            s.table("fact")
            .where("v", between=(10_000, 600_000))
            .count("n")
            .run(mode=mode)
        )

    a, b = run(True), run(False)
    assert_identical(a, b)
    assert a.retries == b.retries
    assert a.recovery_seconds == b.recovery_seconds


def test_traced_serve_with_deltas_identical():
    ranges = [
        (i * 10_000, i * 10_000 + 150_000) for i in range(6)
    ]

    def run(traced):
        s = _solo_session(seed=17)
        if traced:
            s.attach_tracer(Tracer())
        rng = np.random.default_rng(31)
        s.append("L", {
            "v": rng.integers(0, DOMAIN, 500),
            "g": rng.integers(0, 4, 500),
        })
        out = []
        with s.serve(max_batch=4, optimizer="cost") as server:
            handles = [
                s.table("L").where("v", between=(lo, hi)).count("n")
                .submit(server)
                for lo, hi in ranges
            ]
            server.drain()
            for h in handles:
                out.append(h.result())
        return out

    for a, b in zip(run(True), run(False)):
        assert_identical(a, b)


def test_traced_run_populates_spans_and_modeled_tracks():
    s = _solo_session()
    tracer = Tracer()
    s.attach_tracer(tracer)
    s.table("L").where("v", between=(0, 100_000)).count("n").run()
    qt = tracer.last()
    assert qt is not None and qt.wall_seconds > 0
    tracks = {rec.track for rec in qt.spans}
    assert "query" in tracks
    assert any(t.startswith("modeled.") for t in tracks)
    # Modeled spans carry both clocks.
    modeled = [r for r in qt.spans if r.track.startswith("modeled.")]
    assert modeled and all(r.modeled is not None for r in modeled)
