"""Tests for device specs, the transfer model and memory accounting."""

import pytest

from repro.device.model import (
    GTX_680,
    PCIE_GEN2,
    XEON_E5_2650_X2,
    AccessPattern,
    DeviceSpec,
)
from repro.device.memory import MemoryPool
from repro.errors import DeviceError, DeviceOutOfMemory


def spec(**overrides) -> DeviceSpec:
    base = dict(
        name="dev",
        kind="cpu",
        memory_capacity=1000,
        seq_bandwidth=100.0,
        random_bandwidth=10.0,
        launch_overhead=0.0,
        threads=4,
        saturation_bandwidth=250.0,
    )
    base.update(overrides)
    return DeviceSpec(**base)


class TestDeviceSpec:
    def test_transfer_time_is_bytes_over_bandwidth(self):
        assert spec().transfer_seconds(200) == pytest.approx(2.0)

    def test_random_pattern_uses_random_bandwidth(self):
        assert spec().transfer_seconds(200, AccessPattern.RANDOM) == pytest.approx(20.0)

    def test_launch_overhead_added(self):
        s = spec(launch_overhead=0.5)
        assert s.transfer_seconds(100) == pytest.approx(1.5)

    def test_thread_scaling_until_saturation(self):
        s = spec()
        t1 = s.transfer_seconds(1000, threads=1)
        t2 = s.transfer_seconds(1000, threads=2)
        t4 = s.transfer_seconds(1000, threads=4)
        assert t2 == pytest.approx(t1 / 2)
        # 4 threads would give 400 B/s but saturation caps at 250 B/s.
        assert t4 == pytest.approx(1000 / 250.0)

    def test_threads_clamped_to_hardware(self):
        s = spec(saturation_bandwidth=None)
        assert s.transfer_seconds(1000, threads=99) == s.transfer_seconds(
            1000, threads=4
        )

    def test_validation(self):
        with pytest.raises(DeviceError):
            spec(kind="fpga")
        with pytest.raises(DeviceError):
            spec(seq_bandwidth=0)
        with pytest.raises(DeviceError):
            spec(memory_capacity=0)
        with pytest.raises(DeviceError):
            spec(threads=0)
        with pytest.raises(DeviceError):
            spec().transfer_seconds(-1)

    def test_paper_presets(self):
        from repro.device.model import OpClass

        assert GTX_680.memory_capacity == 2 * 1024**3
        assert PCIE_GEN2.seq_bandwidth == pytest.approx(3.95e9)
        assert XEON_E5_2650_X2.threads == 32
        # Calibration anchors (see DESIGN.md §5): a branch-free CPU select
        # costs ~2.4 cycles/tuple, the GPU kernels a flat 0.4 ns/tuple.
        assert XEON_E5_2650_X2.per_tuple[OpClass.SCAN] == pytest.approx(1.2e-9)
        assert GTX_680.per_tuple[OpClass.SCAN] == pytest.approx(0.4e-9)
        assert XEON_E5_2650_X2.saturation_bandwidth == pytest.approx(18e9)

    def test_tuple_seconds(self):
        from repro.device.model import OpClass

        s = spec()
        assert s.tuple_seconds(OpClass.SCAN, 100) == 0.0  # no per-tuple cost set
        with pytest.raises(DeviceError):
            s.tuple_seconds(OpClass.SCAN, -1)


class TestMemoryPool:
    def test_allocate_and_free(self):
        pool = MemoryPool("gpu", 100)
        pool.allocate("a", 60)
        assert pool.allocated == 60
        assert pool.available == 40
        assert pool.holds("a")
        assert pool.size_of("a") == 60
        assert pool.free("a") == 60
        assert pool.allocated == 0

    def test_oom_reports_requested_and_available(self):
        pool = MemoryPool("gpu", 100)
        pool.allocate("a", 80)
        with pytest.raises(DeviceOutOfMemory) as exc:
            pool.allocate("b", 30)
        assert exc.value.requested == 30
        assert exc.value.available == 20

    def test_unbounded_pool(self):
        pool = MemoryPool("ram", None)
        pool.allocate("big", 10**15)
        assert pool.available is None

    def test_duplicate_label_rejected(self):
        pool = MemoryPool("gpu", 100)
        pool.allocate("a", 1)
        with pytest.raises(DeviceError):
            pool.allocate("a", 1)

    def test_free_unknown_rejected(self):
        with pytest.raises(DeviceError):
            MemoryPool("gpu", 100).free("nope")

    def test_free_all(self):
        pool = MemoryPool("gpu", 100)
        pool.allocate("a", 10)
        pool.allocate("b", 20)
        pool.free_all()
        assert pool.allocated == 0

    def test_negative_allocation_rejected(self):
        with pytest.raises(DeviceError):
            MemoryPool("gpu", 100).allocate("a", -1)

    def test_repr_mentions_usage(self):
        pool = MemoryPool("gpu", 2 * 1024**3)
        pool.allocate("a", 1024**3)
        assert "1.0 GiB" in repr(pool)
