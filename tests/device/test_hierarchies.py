"""Tests for alternative memory hierarchies (§VII-B's disk instance)."""

import numpy as np
import pytest

from repro import IntType, Session
from repro.device.hierarchies import (
    HDD_AS_SLOW,
    SATA_LINK,
    SSD_AS_FAST,
    disk_hierarchy,
)


class TestSpecs:
    def test_roles(self):
        assert SSD_AS_FAST.kind == "gpu"
        assert HDD_AS_SLOW.kind == "cpu"
        assert SATA_LINK.kind == "bus"

    def test_fast_tier_is_faster(self):
        assert SSD_AS_FAST.seq_bandwidth > HDD_AS_SLOW.seq_bandwidth
        assert SSD_AS_FAST.random_bandwidth > 50 * HDD_AS_SLOW.random_bandwidth

    def test_machine_wiring(self):
        m = disk_hierarchy()
        assert m.gpu.spec.name.startswith("SATA SSD")
        assert m.cpu.spec.name.startswith("7200rpm")


class TestArOnDisks:
    def test_same_plans_same_answers(self):
        """The A&R engine is hierarchy-agnostic: swap the machine, keep
        the plans, get identical exact results."""
        rng = np.random.default_rng(4)
        data = {"v": rng.integers(0, 100_000, 50_000)}
        sql = "select count(*) from t where v between 10000 and 30000"

        gpu_session = Session()
        gpu_session.create_table("t", {"v": IntType()}, data)
        gpu_session.execute("select bwdecompose(v, 24) from t")

        disk_session = Session(disk_hierarchy())
        disk_session.create_table("t", {"v": IntType()}, data)
        disk_session.execute("select bwdecompose(v, 24) from t")

        a = gpu_session.execute(sql)
        b = disk_session.execute(sql)
        assert a.scalar("count_0") == b.scalar("count_0")

    def test_ar_beats_slow_tier_scan(self):
        """The paradigm's value on disks: scan the SSD-resident
        approximation instead of the HDD-resident full data."""
        rng = np.random.default_rng(5)
        session = Session(disk_hierarchy())
        session.create_table(
            "t", {"v": IntType()}, {"v": rng.integers(0, 100_000, 200_000)}
        )
        session.execute("select bwdecompose(v, 24) from t")
        sql = "select count(*) from t where v < 5000"
        ar = session.execute(sql)
        classic = session.execute(sql, mode="classic")
        assert ar.scalar("count_0") == classic.scalar("count_0")
        assert ar.timeline.total_seconds() < classic.timeline.total_seconds()

    def test_disk_constants_differ_from_gpu(self):
        """The modeled times must reflect the hierarchy, not be copies."""
        rng = np.random.default_rng(6)
        data = {"v": rng.integers(0, 100_000, 50_000)}
        sql = "select count(*) from t where v between 10000 and 30000"
        gpu_session = Session()
        gpu_session.create_table("t", {"v": IntType()}, data)
        gpu_session.execute("select bwdecompose(v, 24) from t")
        disk_session = Session(disk_hierarchy())
        disk_session.create_table("t", {"v": IntType()}, data)
        disk_session.execute("select bwdecompose(v, 24) from t")
        t_gpu = gpu_session.execute(sql).timeline.total_seconds()
        t_disk = disk_session.execute(sql).timeline.total_seconds()
        assert t_disk > 10 * t_gpu  # storage tiers are much slower

    def test_capacity_still_enforced(self):
        from repro.device.machine import Machine
        from repro.device.model import DeviceSpec
        from repro.errors import DeviceOutOfMemory

        tiny_ssd = DeviceSpec(
            name="tiny-ssd", kind="gpu", memory_capacity=1000,
            seq_bandwidth=500e6, random_bandwidth=250e6,
        )
        session = Session(Machine(gpu_spec=tiny_ssd, cpu_spec=HDD_AS_SLOW,
                                  bus_spec=SATA_LINK))
        session.create_table(
            "t", {"v": IntType()}, {"v": np.arange(100_000)}
        )
        with pytest.raises(DeviceOutOfMemory):
            session.execute("select bwdecompose(v, 32) from t")
