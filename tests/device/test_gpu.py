"""Tests for the simulated GPU kernels and residency enforcement."""

import numpy as np
import pytest

from repro.device.gpu import SimulatedGPU
from repro.device.machine import Machine
from repro.device.model import DeviceSpec
from repro.device.timeline import Timeline
from repro.errors import DataNotResident, DeviceOutOfMemory
from repro.storage.decompose import decompose_values


def small_gpu(capacity=10**6) -> SimulatedGPU:
    spec = DeviceSpec(
        name="tiny-gpu", kind="gpu", memory_capacity=capacity,
        seq_bandwidth=150e9, random_bandwidth=20e9, launch_overhead=5e-6,
    )
    return SimulatedGPU(spec, processing_reserve_fraction=0.1)


def loaded_column(gpu, values, residual_bits=4):
    col = decompose_values(np.asarray(values), residual_bits=residual_bits)
    gpu.load_column("col", col, None)
    return col


class TestResidency:
    def test_kernel_requires_loaded_column(self):
        gpu = small_gpu()
        col = decompose_values(np.arange(100), residual_bits=4)
        with pytest.raises(DataNotResident):
            gpu.scan_code_range(col, 0, 1, Timeline())

    def test_load_and_evict(self):
        gpu = small_gpu()
        col = loaded_column(gpu, np.arange(100))
        assert gpu.is_resident(col)
        assert gpu.pool.holds("col")
        gpu.evict_column(col)
        assert not gpu.is_resident(col)
        with pytest.raises(DataNotResident):
            gpu.evict_column(col)

    def test_capacity_enforced(self):
        gpu = small_gpu(capacity=1000)
        col = decompose_values(np.arange(10_000), residual_bits=0)
        with pytest.raises(DeviceOutOfMemory):
            gpu.load_column("big", col)

    def test_processing_reserve_held_back(self):
        gpu = small_gpu(capacity=1000)
        assert gpu.pool.available == 900

    def test_load_charges_load_phase(self):
        gpu = small_gpu()
        col = decompose_values(np.arange(100), residual_bits=4)
        t = Timeline()
        gpu.load_column("c", col, t)
        (span,) = t.spans
        assert span.phase == "load"


class TestScanKernels:
    def test_scan_code_range_positions(self):
        gpu = small_gpu()
        values = np.array([5, 100, 17, 42, 99, 6])
        col = loaded_column(gpu, values, residual_bits=0)
        t = Timeline()
        hits = gpu.scan_code_range(
            col, col.decomposition.approx_code_of(17),
            col.decomposition.approx_code_of(99), t,
        )
        assert np.array_equal(np.sort(values[hits]), [17, 42, 99])
        assert t.seconds_by_kind()["gpu"] > 0

    def test_probe_restricts_candidates(self):
        gpu = small_gpu()
        values = np.arange(64)
        col = loaded_column(gpu, values, residual_bits=0)
        t = Timeline()
        initial = np.array([1, 10, 20, 40, 63])
        keep, codes = gpu.refine_positions_code_range(col, initial, 10, 40, t)
        assert np.array_equal(initial[keep], [10, 20, 40])
        assert np.array_equal(codes, values[initial])

    def test_probe_mask_aligned_with_positions(self):
        gpu = small_gpu()
        values = np.arange(64)
        col = loaded_column(gpu, values, residual_bits=0)
        keep, codes = gpu.refine_positions_code_range(
            col, np.array([63, 1, 40]), 10, 40, Timeline()
        )
        assert keep.dtype == bool and keep.shape == (3,)
        assert np.array_equal(keep, [False, False, True])
        assert np.array_equal(codes, [63, 1, 40])

    def test_gather_codes(self):
        gpu = small_gpu()
        values = np.array([10, 20, 30, 40])
        col = loaded_column(gpu, values, residual_bits=0)
        t = Timeline()
        out = gpu.gather_codes(col, np.array([3, 1]), t)
        assert np.array_equal(
            col.decomposition.combine(out, np.zeros(2, dtype=np.uint64)), [40, 20]
        )

    def test_full_scan_matches_codes(self):
        gpu = small_gpu()
        values = np.arange(100, 200)
        col = loaded_column(gpu, values, residual_bits=3)
        t = Timeline()
        assert np.array_equal(gpu.full_scan_codes(col, t), col.approx_codes())


class TestGroupingKernel:
    def test_group_ids_positionally_aligned(self):
        gpu = small_gpu()
        codes = np.array([7, 3, 7, 9, 3])
        t = Timeline()
        gids, uniques = gpu.hash_group(codes, t)
        assert np.array_equal(uniques[gids], codes)
        assert len(uniques) == 3

    def test_fewer_groups_cost_more(self):
        """§VI-B Fig 8f: fewer groups → more write conflicts → slower."""
        gpu = small_gpu()
        few = np.zeros(10_000, dtype=np.int64)
        many = np.arange(10_000, dtype=np.int64) % 1000
        t_few, t_many = Timeline(), Timeline()
        gpu.hash_group(few, t_few)
        gpu.hash_group(many, t_many)
        assert t_few.total_seconds() > t_many.total_seconds()


class TestMinMaxKernel:
    def test_min_keeps_all_codes_at_or_below_certain_bound(self):
        gpu = small_gpu()
        codes = np.array([5, 2, 9, 2, 7])
        certain = np.array([False, False, True, False, True])
        t = Timeline()
        keep = gpu.minmax_candidates(codes, certain, t, find_min=True)
        # best certain code is 7 → candidates are codes ≤ 7
        assert np.array_equal(keep, [0, 1, 3, 4])

    def test_max_symmetric(self):
        gpu = small_gpu()
        codes = np.array([5, 2, 9, 2, 7])
        certain = np.array([True, False, False, False, False])
        t = Timeline()
        keep = gpu.minmax_candidates(codes, certain, t, find_min=False)
        assert np.array_equal(keep, [0, 2, 4])

    def test_no_certain_rows_keeps_everything(self):
        gpu = small_gpu()
        codes = np.array([5, 2, 9])
        t = Timeline()
        keep = gpu.minmax_candidates(codes, None, t, find_min=True)
        assert np.array_equal(keep, [0, 1, 2])

    def test_slack_widens_candidates(self):
        gpu = small_gpu()
        codes = np.array([5, 2, 9, 7])
        certain = np.array([False, False, False, True])
        t = Timeline()
        no_slack = gpu.minmax_candidates(codes, certain, t, find_min=True)
        with_slack = gpu.minmax_candidates(
            codes, certain, t, find_min=True, slack_codes=2
        )
        assert set(no_slack) <= set(with_slack)
        assert 2 in with_slack  # code 9 within slack 2 of bound 7


class TestMachine:
    def test_paper_testbed_wiring(self):
        m = Machine.paper_testbed()
        assert m.gpu.spec.name == "GTX 680"
        assert m.cpu.spec.threads == 32
        assert m.bus.spec.seq_bandwidth == pytest.approx(3.95e9)
        assert isinstance(m.new_timeline(), Timeline)

    def test_reserve_fraction_validated(self):
        with pytest.raises(ValueError):
            Machine.paper_testbed(gpu_processing_reserve_fraction=1.5)
