"""Tests for timelines, the PCI bus model and the CPU scaling model."""

import pytest

from repro.device.bus import PciBus
from repro.device.cpu import Cpu
from repro.device.model import AccessPattern, DeviceSpec, PCIE_GEN2, XEON_E5_2650_X2
from repro.device.timeline import Timeline


class TestTimeline:
    def test_record_and_totals(self):
        t = Timeline()
        t.record("gpu0", "gpu", "select.approx", 100, 1.0, "approximate")
        t.record("cpu0", "cpu", "select.refine", 50, 2.0, "refine")
        t.record("pci", "bus", "candidates", 10, 0.5, "refine")
        assert t.total_seconds() == pytest.approx(3.5)
        assert t.approximate_seconds() == pytest.approx(1.0)
        assert t.refine_seconds() == pytest.approx(2.5)

    def test_breakdown_by_kind(self):
        t = Timeline()
        t.record("gpu0", "gpu", "a", 0, 1.0)
        t.record("gpu0", "gpu", "b", 0, 0.5)
        t.record("cpu0", "cpu", "c", 0, 2.0)
        kinds = t.seconds_by_kind()
        assert kinds["gpu"] == pytest.approx(1.5)
        assert kinds["cpu"] == pytest.approx(2.0)
        assert "bus" not in kinds

    def test_phase_filter(self):
        t = Timeline()
        t.record("gpu0", "gpu", "a", 0, 1.0, "approximate")
        t.record("pci", "bus", "load", 0, 9.0, "load")
        assert t.total_seconds(phases=("approximate", "refine")) == pytest.approx(1.0)

    def test_bytes_by_kind(self):
        t = Timeline()
        t.record("gpu0", "gpu", "a", 100, 1.0)
        t.record("gpu0", "gpu", "b", 11, 1.0)
        assert t.bytes_by_kind() == {"gpu": 111}

    def test_extend_merges(self):
        a, b = Timeline(), Timeline()
        a.record("x", "gpu", "a", 0, 1.0)
        b.record("y", "cpu", "b", 0, 2.0)
        a.extend(b)
        assert len(a) == 2
        assert a.total_seconds() == pytest.approx(3.0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            Timeline().record("x", "gpu", "a", 0, -1.0)

    def test_render_readable(self):
        t = Timeline()
        t.record("gpu0", "gpu", "select.approx", 128, 0.004)
        text = t.render()
        assert "select.approx" in text
        assert "total" in text


class TestPciBus:
    def test_transfer_charges_bus_span(self):
        bus = PciBus(PCIE_GEN2)
        t = Timeline()
        secs = bus.transfer(t, int(3.95e9), "candidates")
        assert secs == pytest.approx(1.0, rel=1e-3)
        assert t.seconds_by_kind()["bus"] == pytest.approx(secs)

    def test_streaming_baseline_matches_paper_measurement(self):
        """§VI-C: streaming the 1.8 GB spatial input ≈ 0.453 s."""
        bus = PciBus(PCIE_GEN2)
        assert bus.streaming_seconds(int(1.79e9)) == pytest.approx(0.453, rel=0.01)


class TestCpuScaling:
    def test_charge_records_refine_phase_by_default(self):
        cpu = Cpu(XEON_E5_2650_X2)
        t = Timeline()
        cpu.charge(t, "select.refine", 10**9)
        (span,) = t.spans
        assert span.phase == "refine"
        assert span.seconds == pytest.approx(0.2)

    def test_random_pattern_slower(self):
        cpu = Cpu(XEON_E5_2650_X2)
        t = Timeline()
        seq = cpu.charge(t, "a", 10**8, pattern=AccessPattern.SEQUENTIAL)
        rnd = cpu.charge(t, "a", 10**8, pattern=AccessPattern.RANDOM)
        assert rnd > seq

    def test_fig11_throughput_shape(self):
        """Fig 11: near-linear scaling, saturation ~16 q/s at 32 threads."""
        cpu = Cpu(XEON_E5_2650_X2)
        # spatial query stream: ~0.5 s and ~1.1 GB of memory traffic each
        secs, q_bytes = 0.51, 1.1e9
        q1 = cpu.stream_throughput(secs, q_bytes, 1)
        q2 = cpu.stream_throughput(secs, q_bytes, 2)
        q16 = cpu.stream_throughput(secs, q_bytes, 16)
        q32 = cpu.stream_throughput(secs, q_bytes, 32)
        assert q1 == pytest.approx(1.96, rel=0.05)
        assert q2 == pytest.approx(2 * q1, rel=0.01)
        assert q32 == pytest.approx(16.2, rel=0.05)
        assert q32 <= q16 * 1.05  # saturated: no gain past the memory wall

    def test_thread_count_clamped(self):
        cpu = Cpu(XEON_E5_2650_X2)
        assert cpu.stream_throughput(0.5, 1e9, 64) == cpu.stream_throughput(
            0.5, 1e9, 32
        )

    def test_invalid_query_cost(self):
        with pytest.raises(ValueError):
            Cpu(XEON_E5_2650_X2).stream_throughput(0, 1e9, 1)

    def test_per_tuple_cost_added(self):
        cpu = Cpu(XEON_E5_2650_X2)
        t = Timeline()
        from repro.device.model import OpClass

        plain = cpu.charge(t, "a", 0, tuples=0)
        with_tuples = cpu.charge(t, "a", 0, tuples=10**6, op_class=OpClass.HASH)
        assert plain == 0.0
        assert with_tuples == pytest.approx(15e-3)


class TestCustomSpecValidation:
    def test_bus_kind_allowed(self):
        spec = DeviceSpec(
            name="nvlink", kind="bus", memory_capacity=None,
            seq_bandwidth=25e9, random_bandwidth=25e9,
        )
        assert PciBus(spec).streaming_seconds(25 * 10**9) == pytest.approx(1.0)
