"""Rendering: explain with estimates/decisions, estimated-vs-actual spans,
and loud PlanErrors on cost-model gaps."""

import numpy as np
import pytest

from repro.device.timeline import Timeline
from repro.engine.session import Session
from repro.errors import PlanError
from repro.opt.cost import estimated_plan_spans
from repro.opt.report import estimated_vs_actual
from repro.plan.rewriter import rewrite_to_ar_plan
from repro.storage.column import IntType

DOMAIN = 1 << 20


@pytest.fixture(scope="module")
def session():
    rng = np.random.default_rng(21)
    s = Session()
    s.create_table(
        "L", {"v": IntType(), "w": IntType()},
        {
            "v": rng.integers(0, DOMAIN, 25_000),
            "w": rng.integers(0, DOMAIN, 25_000),
        },
    )
    s.create_table("R", {"v": IntType()}, {"v": rng.integers(0, DOMAIN, 200)})
    s.bwdecompose("L", "v", 24)
    s.bwdecompose("L", "w", 24)
    s.bwdecompose("R", "v", 24)
    return s


def _theta_query(session):
    return (
        session.table("L")
        .where("v", between=(0, DOMAIN // 2))
        .theta_join("R", on="v", op="<")
        .count("n")
        .build()
    )


def test_explain_without_optimizer_has_no_estimates(session):
    text = session.explain(_theta_query(session))
    assert "optimizer decisions" not in text
    assert "est" not in text.splitlines()[1]


def test_explain_with_optimizer_shows_estimates_and_decisions(session):
    text = session.explain(_theta_query(session), optimizer="cost")
    assert "optimizer decisions" in text
    assert "theta-strategy" in text
    assert "* chosen" in text
    assert "rej" in text
    # every operator line carries its estimated item count + est ms
    op_lines = [l for l in text.splitlines()[1:] if l.startswith("  [")]
    assert op_lines
    assert all("items, est" in l for l in op_lines)


def test_scan_order_decision_recorded_for_two_predicates(session):
    q = (
        session.table("L")
        .where("v", between=(0, DOMAIN // 2))
        .where("w", between=(0, DOMAIN // 10))
        .count("n")
        .build()
    )
    text = session.explain(q, optimizer="cost")
    assert "scan-order" in text
    assert "forced" in text


def test_estimated_vs_actual_renders_ratio_table(session):
    q = _theta_query(session)
    plan = rewrite_to_ar_plan(q, session.catalog, optimizer="cost")
    timeline = Timeline()
    session.query(q, optimizer="cost", timeline=timeline)
    report = estimated_vs_actual(plan, timeline)
    assert "op" in report and "est" in report and "actual" in report
    assert "thetajoin" in report.lower() or "theta" in report.lower()


def test_estimated_vs_actual_requires_estimates(session):
    plan = rewrite_to_ar_plan(_theta_query(session), session.catalog)
    with pytest.raises(PlanError, match="no estimates"):
        estimated_vs_actual(plan, Timeline())


def test_unknown_operator_is_a_plan_error(session):
    plan = rewrite_to_ar_plan(_theta_query(session), session.catalog)

    class MysteryOp:
        phase = "approximate"

    plan.ops.append(MysteryOp())
    with pytest.raises(PlanError, match="no cost-model rule"):
        estimated_plan_spans(plan, session.catalog)
