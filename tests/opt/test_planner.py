"""Decision making: theta strategy choice, pinned knobs, the serve gate."""

import numpy as np
import pytest

from repro.engine.session import Session
from repro.errors import PlanError
from repro.opt.planner import (
    OPTIMIZERS,
    batch_membership_decision,
    check_optimizer,
    choose_theta,
)
from repro.storage.column import IntType

DOMAIN = 1 << 20


@pytest.fixture(scope="module")
def session():
    rng = np.random.default_rng(5)
    s = Session()
    s.create_table(
        "L", {"v": IntType()}, {"v": rng.integers(0, DOMAIN, 40_000)}
    )
    s.create_table(
        "Rsmall", {"v": IntType()},
        {"v": np.sort(rng.integers(0, DOMAIN, 16))},
    )
    s.bwdecompose("L", "v", 24)
    s.bwdecompose("Rsmall", "v", 24)
    return s


def test_check_optimizer_rejects_unknown():
    assert check_optimizer("cost") == "cost"
    with pytest.raises(PlanError, match="unknown optimizer"):
        check_optimizer("greedy")
    assert set(OPTIMIZERS) == {"heuristic", "cost"}


def test_session_rejects_unknown_optimizer(session):
    q = session.table("L").where("v", "<=", 100).count("n").build()
    with pytest.raises(PlanError, match="unknown optimizer"):
        session.query(q, optimizer="greedy")


def test_small_right_side_prefers_sorted_over_brute(session):
    """The PR-8 win region: the heuristic's |R| cutoff picks brute force
    below _SORT_MIN_RIGHT, but candidate-pair counts say sorted wins."""
    q = session.table("L").theta_join("Rsmall", on="v", op="<").count("n").build()
    tj, decision = choose_theta(q, session.catalog)
    assert tj.strategy == "sorted"
    assert not decision.forced
    assert decision.chosen.startswith("sorted")
    labels = {alt.label for alt in decision.alternatives}
    assert {"bruteforce+pairs", "sorted+pairs", "sorted+runs"} <= labels
    assert decision.estimates["candidate_pairs"] >= decision.estimates[
        "certain_pairs"
    ]


def test_pinned_strategy_is_respected_but_recorded(session):
    q = (
        session.table("L")
        .theta_join("Rsmall", on="v", op="<", strategy="bruteforce")
        .count("n")
        .build()
    )
    tj, decision = choose_theta(q, session.catalog)
    assert tj.strategy == "bruteforce"
    assert decision.forced
    assert decision.chosen == "bruteforce+pairs"
    # The cheaper rejected alternative is still on the record.
    cheaper = [
        alt for alt in decision.alternatives
        if alt.label.startswith("sorted")
        and alt.est_seconds < decision.chosen_alternative().est_seconds
    ]
    assert cheaper


def test_decision_describe_marks_winner_and_rejects(session):
    q = session.table("L").theta_join("Rsmall", on="v", op="<").count("n").build()
    _, decision = choose_theta(q, session.catalog)
    text = "\n".join(decision.describe())
    assert "* chosen" in text
    assert "rej" in text
    assert "est" in text


def test_batch_membership_flips_with_selectivity():
    n = 1_000_000
    narrow = batch_membership_decision("t", "c", n, [1000] * 8)
    wide = batch_membership_decision("t", "c", n, [600_000] * 8)
    assert narrow.chosen == "fused"
    assert wide.chosen == "solo"
    assert {a.label for a in narrow.alternatives} == {"fused", "solo"}


def test_unknown_pinned_combo_raises(session):
    """A pin the enumerator cannot produce is a loud PlanError."""
    q = (
        session.table("L")
        .theta_join("Rsmall", on="v", op="<", strategy="bruteforce", emit="runs")
        .count("n")
        .build()
    )
    with pytest.raises(PlanError, match="no enumerable alternative"):
        choose_theta(q, session.catalog)
