"""PlanCache unit behaviour: LRU, by-reference hits, epoch keying."""

import numpy as np
import pytest

from repro import IntType, Session
from repro.opt.plan_cache import PlanCache


def test_hit_returns_same_object_by_reference():
    cache = PlanCache()
    built = []

    def build():
        plan = object()
        built.append(plan)
        return plan

    a = cache.get(("q", 1), build)
    b = cache.get(("q", 1), build)
    assert a is b, "serve keys cooperative scans on op identity"
    assert len(built) == 1
    assert cache.hits == 1 and cache.misses == 1
    assert cache.hit_rate == 0.5


def test_distinct_keys_build_separately():
    cache = PlanCache()
    a = cache.get(("q", 1), object)
    b = cache.get(("q", 2), object)
    assert a is not b
    assert cache.misses == 2 and cache.hits == 0


def test_unhashable_key_builds_uncached():
    cache = PlanCache()
    key = ("q", ["not", "hashable"])
    a = cache.get(key, object)
    b = cache.get(key, object)
    assert a is not b, "unhashable keys must not be cached"
    assert cache.misses == 2
    assert len(cache) == 0


def test_lru_eviction_drops_oldest():
    cache = PlanCache(maxsize=2)
    cache.get("a", object)
    cache.get("b", object)
    cache.get("a", object)  # refresh "a": "b" is now the LRU entry
    cache.get("c", object)  # evicts "b"
    assert len(cache) == 2
    misses = cache.misses
    cache.get("a", object)
    assert cache.misses == misses, "'a' must have survived"
    cache.get("b", object)
    assert cache.misses == misses + 1, "'b' must have been evicted"


def test_clear_empties_but_keeps_counters():
    cache = PlanCache()
    cache.get("a", object)
    cache.get("a", object)
    cache.clear()
    assert len(cache) == 0
    assert cache.hits == 1 and cache.misses == 1
    cache.get("a", object)
    assert cache.misses == 2


def test_invalid_maxsize_rejected():
    with pytest.raises(ValueError):
        PlanCache(maxsize=0)


def test_epoch_in_key_invalidates_across_compaction():
    """End-to-end: the scheduler's key includes ``catalog.epoch``, so a
    compaction re-plans while an append alone keeps the cached plan."""
    rng = np.random.default_rng(2)
    s = Session()
    s.create_table(
        "t", {"v": IntType()},
        {"v": rng.integers(0, 9_000, 1_500).astype(np.int64)},
    )
    s.bwdecompose("t", "v", 24)
    server = s.serve(delta_watermark=1 << 30)
    q = lambda: s.table("t").where("v", between=(0, 800)).count("n")

    q().submit(server)
    server.drain()
    q().submit(server)
    server.drain()
    assert server.stats.plan_cache_hits == 1

    # Appends do not bump the epoch: the base plan stays valid.
    server.submit_write("t", {"v": np.array([5], dtype=np.int64)})
    q().submit(server)
    server.drain()
    assert server.stats.plan_cache_hits == 2

    # Compaction bumps it: exactly one rebuild, then hits resume.
    s.compact("t")
    misses = server.stats.plan_cache_misses
    q().submit(server)
    server.drain()
    assert server.stats.plan_cache_misses == misses + 1
    q().submit(server)
    server.drain()
    assert server.stats.plan_cache_misses == misses + 1
