"""Estimator sanity: histogram-seeded cardinalities track exact counts."""

import numpy as np
import pytest

from repro.core.relax import ValueRange
from repro.core.theta import Theta, ThetaOp
from repro.engine.session import Session
from repro.opt.estimates import (
    estimate_conjunction_rows,
    estimate_scan_candidates,
    estimate_selectivity,
    estimate_theta_cardinality,
)
from repro.plan.expr import ColRef, Predicate
from repro.storage.column import IntType

N = 30_000
DOMAIN = 1 << 20


@pytest.fixture(scope="module")
def session():
    rng = np.random.default_rng(11)
    s = Session()
    s.create_table(
        "L", {"v": IntType(), "w": IntType()},
        {"v": rng.integers(0, DOMAIN, N), "w": rng.integers(0, 1000, N)},
    )
    s.create_table(
        "R", {"v": IntType()}, {"v": rng.integers(0, DOMAIN, N // 100)}
    )
    s.bwdecompose("L", "v", 24)
    # Fine resolution on the narrow column (max_error 15) so relaxation
    # does not dominate its selectivity estimate.
    s.bwdecompose("L", "w", residual_bits=4)
    s.bwdecompose("R", "v", 24)
    return s


def _pred(column, lo, hi):
    return Predicate(ColRef(column), ValueRange.between(lo, hi))


def test_scan_estimate_tracks_exact_candidates(session):
    pred = _pred("v", 100_000, 400_000)
    est = estimate_scan_candidates(session.catalog, "L", pred)
    exact = int(
        np.count_nonzero(
            (session.catalog.table("L").column("v").tail >= 100_000)
            & (session.catalog.table("L").column("v").tail <= 400_000)
        )
    )
    # The relaxed range rounds out by at most one residual step per side;
    # the histogram interpolates inside merged buckets.
    assert exact * 0.8 <= est <= exact * 1.25 + 600


def test_selectivity_is_a_fraction(session):
    sel = estimate_selectivity(session.catalog, "L", _pred("v", 0, DOMAIN // 4))
    assert 0.0 <= sel <= 1.0
    assert sel == pytest.approx(0.25, rel=0.2)


def test_conjunction_multiplies_independent_selectivities(session):
    preds = [_pred("v", 0, DOMAIN // 2), _pred("w", 0, 99)]
    rows = estimate_conjunction_rows(session.catalog, "L", preds, N)
    assert rows == pytest.approx(N * 0.5 * 0.1, rel=0.3)


def test_theta_estimate_brackets_exact_pairs(session):
    catalog = session.catalog
    left = catalog.decomposition_of("L", "v")
    right = catalog.decomposition_of("R", "v")
    theta = Theta(ThetaOp.LT)
    card = estimate_theta_cardinality(
        left, right, theta,
        left_hist=catalog.histogram_of("L", "v"),
        right_hist=catalog.histogram_of("R", "v"),
    )
    lv = catalog.table("L").column("v").tail
    rv = catalog.table("R").column("v").tail
    exact = int(np.sum(np.searchsorted(np.sort(rv), lv, side="right")))
    exact_pairs = card.n_left * card.n_right - exact  # l < r pairs
    assert card.certain_pairs <= card.candidate_pairs
    assert card.candidate_pairs <= card.n_left * card.n_right
    assert card.candidate_pairs == pytest.approx(exact_pairs, rel=0.05)


def test_theta_estimate_scaled_by_selection(session):
    catalog = session.catalog
    left = catalog.decomposition_of("L", "v")
    right = catalog.decomposition_of("R", "v")
    card = estimate_theta_cardinality(left, right, Theta(ThetaOp.LT))
    half = card.scaled(0.5)
    assert half.n_left == card.n_left // 2
    assert half.candidate_pairs == pytest.approx(
        card.candidate_pairs * 0.5, rel=0.01
    )
    assert half.certain_pairs <= half.candidate_pairs


# ----------------------------------------------------------------------
# Delta-aware estimates (PR 10): pending rows are invisible to the
# histograms but always evaluated exactly — the estimator adds the exact
# delta row count on top of its base-segment figures.
# ----------------------------------------------------------------------
def _delta_session():
    rng = np.random.default_rng(23)
    s = Session()
    s.create_table(
        "L", {"v": IntType()}, {"v": rng.integers(0, DOMAIN, 5_000)}
    )
    s.create_table(
        "R", {"v": IntType()}, {"v": rng.integers(0, DOMAIN, 200)}
    )
    s.bwdecompose("L", "v", 24)
    s.bwdecompose("R", "v", 24)
    return s, rng


def test_scan_estimate_adds_exact_delta_rows():
    s, rng = _delta_session()
    pred = _pred("v", 0, DOMAIN // 4)
    base = estimate_scan_candidates(s.catalog, "L", pred)
    s.append("L", {"v": rng.integers(0, DOMAIN, 137)})
    assert estimate_scan_candidates(s.catalog, "L", pred) == base + 137
    s.compact("L")
    # Folded into base segments: back under histogram control (the delta
    # surcharge is gone; the histogram was rebuilt over base+delta).
    folded = estimate_scan_candidates(s.catalog, "L", pred)
    assert abs(folded - base) <= 137


def test_theta_estimate_adds_delta_cross_terms():
    s, rng = _delta_session()
    catalog = s.catalog
    left = catalog.decomposition_of("L", "v")
    right = catalog.decomposition_of("R", "v")
    theta = Theta(ThetaOp.LT)
    kw = dict(
        left_hist=catalog.histogram_of("L", "v"),
        right_hist=catalog.histogram_of("R", "v"),
    )
    base = estimate_theta_cardinality(left, right, theta, **kw)
    card = estimate_theta_cardinality(
        left, right, theta, left_delta_rows=50, right_delta_rows=7, **kw
    )
    assert card.n_left == base.n_left + 50
    assert card.n_right == base.n_right + 7
    expected = (
        base.candidate_pairs
        + 50 * card.n_right          # new-left × all-right
        + base.n_left * 7            # base-left × new-right
    )
    assert card.candidate_pairs == min(expected, card.n_left * card.n_right)
    assert card.candidate_pairs > base.candidate_pairs


def test_choose_theta_sees_pending_delta():
    from repro.opt.planner import choose_theta

    s, rng = _delta_session()
    s.append("L", {"v": rng.integers(0, DOMAIN, 300)})
    query = (
        s.table("L").theta_join("R", on="v", op="<").count("n").build()
    )
    _, decision = choose_theta(query, s.catalog)
    assert decision.chosen in {a.label for a in decision.alternatives}
    # The recorded pair estimate covers the delta-inclusive left side.
    assert decision.estimates.get("n_left", 5_300) == 5_300
