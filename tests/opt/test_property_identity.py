"""Property tests: the optimizer never changes an answer or a charge.

The cost-based pick must be Result- and modeled-Timeline byte-identical to
every forced-strategy run — across theta strategy × emit, all A&R modes,
and under an aggressively evicting decoded-view budget.  The optimizer
only ever moves simulation-host wall-clock.
"""

import numpy as np
import pytest

from repro.engine.session import Session
from repro.storage.column import IntType
from repro.storage.decompose import set_view_budget

DOMAIN = 1 << 20

FORCED = (
    ("bruteforce", "pairs"),
    ("sorted", "pairs"),
    ("sorted", "runs"),
)


def _session(n_left=12_000, n_right=300, seed=3):
    rng = np.random.default_rng(seed)
    s = Session()
    s.create_table(
        "L", {"v": IntType(), "g": IntType()},
        {
            "v": rng.integers(0, DOMAIN, n_left),
            "g": rng.integers(0, 4, n_left),
        },
    )
    s.create_table(
        "R", {"v": IntType()}, {"v": rng.integers(0, DOMAIN, n_right)}
    )
    s.bwdecompose("L", "v", 24)
    s.bwdecompose("R", "v", 24)
    return s


def _theta_builder(s, strategy="auto", emit="auto"):
    return (
        s.table("L")
        .where("v", between=(50_000, 900_000))
        .theta_join("R", on="v", op="<", strategy=strategy, emit=emit)
        .count("n")
    )


def assert_identical(a, b):
    assert a.row_count == b.row_count
    assert set(a.columns) == set(b.columns)
    for name in a.columns:
        np.testing.assert_array_equal(a.columns[name], b.columns[name])
    assert a.timeline.span_tuples() == b.timeline.span_tuples()
    if a.approximate is None:
        assert b.approximate is None
    else:
        assert a.approximate.aggregates == b.approximate.aggregates
        assert a.approximate.candidate_rows == b.approximate.candidate_rows


@pytest.fixture(scope="module")
def session():
    return _session()


@pytest.mark.parametrize("mode", ["ar", "approximate"])
@pytest.mark.parametrize("strategy,emit", FORCED)
def test_optimized_equals_every_forced_run(session, mode, strategy, emit):
    forced = _theta_builder(session, strategy, emit).run(mode=mode)
    optimized = _theta_builder(session).run(mode=mode, optimizer="cost")
    assert_identical(forced, optimized)


@pytest.mark.parametrize("strategy,emit", FORCED)
def test_identity_holds_under_evicting_view_budget(session, strategy, emit):
    set_view_budget(64 * 1024, segment_rows=2048)
    try:
        forced = _theta_builder(session, strategy, emit).run(mode="ar")
        optimized = _theta_builder(session).run(mode="ar", optimizer="cost")
    finally:
        set_view_budget(None)
    assert_identical(forced, optimized)


def test_scan_only_query_identical_under_optimizer(session):
    q = lambda **kw: (
        session.table("L")
        .where("v", between=(100_000, 300_000))
        .group_by("g")
        .count("n")
        .run(**kw)
    )
    assert_identical(q(mode="ar"), q(mode="ar", optimizer="cost"))


def test_optimizer_pick_beats_or_ties_heuristic_in_win_region():
    """Small right side: the heuristic bruteforces, the optimizer sorts —
    answers stay identical while the chosen plan does less work."""
    rng = np.random.default_rng(9)
    s = Session()
    s.create_table("L", {"v": IntType()}, {"v": rng.integers(0, DOMAIN, 20_000)})
    s.create_table("R", {"v": IntType()}, {"v": rng.integers(0, DOMAIN, 16)})
    s.bwdecompose("L", "v", 24)
    s.bwdecompose("R", "v", 24)
    builder = s.table("L").theta_join("R", on="v", op="<").count("n")
    assert_identical(
        builder.run(mode="ar"), builder.run(mode="ar", optimizer="cost")
    )
