"""Tests for predicate relaxation (paper §IV-B) — soundness and tightness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.relax import (
    EMPTY_CODE_RANGE,
    CompareOp,
    ValueRange,
    candidate_mask_for_intervals,
    certain_code_range,
    certain_mask_for_intervals,
    relax_to_code_range,
)
from repro.errors import PlanError
from repro.storage.decompose import Decomposition, plan_decomposition


class TestCompareOp:
    def test_from_symbol_aliases(self):
        assert CompareOp.from_symbol("==") is CompareOp.EQ
        assert CompareOp.from_symbol("!=") is CompareOp.NE
        assert CompareOp.from_symbol("<=") is CompareOp.LE

    def test_unknown_symbol(self):
        with pytest.raises(PlanError):
            CompareOp.from_symbol("~")

    def test_flip(self):
        assert CompareOp.LT.flip() is CompareOp.GT
        assert CompareOp.GE.flip() is CompareOp.LE
        assert CompareOp.EQ.flip() is CompareOp.EQ


class TestValueRange:
    def test_normalization_of_each_operator(self):
        assert ValueRange.from_comparison(CompareOp.EQ, 5) == ValueRange(5, 5)
        assert ValueRange.from_comparison(CompareOp.GT, 5) == ValueRange(6, None)
        assert ValueRange.from_comparison(CompareOp.GE, 5) == ValueRange(5, None)
        assert ValueRange.from_comparison(CompareOp.LT, 5) == ValueRange(None, 4)
        assert ValueRange.from_comparison(CompareOp.LE, 5) == ValueRange(None, 5)

    def test_ne_not_representable(self):
        with pytest.raises(PlanError):
            ValueRange.from_comparison(CompareOp.NE, 5)

    def test_between(self):
        assert ValueRange.between(2, 9) == ValueRange(2, 9)

    def test_empty_normalized(self):
        assert ValueRange(9, 2).is_empty
        assert ValueRange.empty().is_empty
        assert not ValueRange(2, 2).is_empty

    def test_intersect(self):
        assert ValueRange(1, 10).intersect(ValueRange(5, None)) == ValueRange(5, 10)
        assert ValueRange(None, None).intersect(ValueRange(3, 4)) == ValueRange(3, 4)
        assert ValueRange(1, 3).intersect(ValueRange(5, 9)).is_empty

    def test_evaluate_exact_mask(self):
        values = np.array([1, 5, 6, 10, 11])
        assert np.array_equal(
            ValueRange(5, 10).evaluate(values), [False, True, True, True, False]
        )
        assert not ValueRange.empty().evaluate(values).any()
        assert ValueRange(None, None).evaluate(values).all()


class TestRelaxToCodeRange:
    """The paper's adaptation function f, via normalized intervals."""

    def decomposition(self):
        # base 0, 8-bit domain, 3 residual bits → buckets of 8
        return Decomposition(base=0, total_bits=8, residual_bits=3)

    def test_equality_selects_one_bucket(self):
        d = self.decomposition()
        assert relax_to_code_range(ValueRange(17, 17), d) == (2, 2)

    def test_gt_keeps_boundary_bucket(self):
        """f('> x') must include x's own bucket: values above x share it."""
        d = self.decomposition()
        vr = ValueRange.from_comparison(CompareOp.GT, 17)
        lo, hi = relax_to_code_range(vr, d)
        assert lo == 2  # bucket of 18
        assert hi == d.max_code

    def test_gt_on_bucket_ceiling_skips_bucket(self):
        """x = bucket max (23): v > 23 starts exactly at the next bucket."""
        d = self.decomposition()
        vr = ValueRange.from_comparison(CompareOp.GT, 23)
        assert relax_to_code_range(vr, d)[0] == 3

    def test_lt_keeps_boundary_bucket(self):
        d = self.decomposition()
        vr = ValueRange.from_comparison(CompareOp.LT, 17)
        lo, hi = relax_to_code_range(vr, d)
        assert (lo, hi) == (0, 2)

    def test_lt_on_bucket_floor_skips_bucket(self):
        """x = bucket floor (16): v < 16 ends exactly at the previous bucket."""
        d = self.decomposition()
        vr = ValueRange.from_comparison(CompareOp.LT, 16)
        assert relax_to_code_range(vr, d)[1] == 1

    def test_out_of_domain_empty(self):
        d = Decomposition(base=100, total_bits=4, residual_bits=1)
        assert relax_to_code_range(ValueRange(0, 50), d) == EMPTY_CODE_RANGE
        assert relax_to_code_range(ValueRange(200, 300), d) == EMPTY_CODE_RANGE

    def test_unbounded_range_full_domain(self):
        d = self.decomposition()
        assert relax_to_code_range(ValueRange(None, None), d) == (0, d.max_code)

    def test_empty_range(self):
        assert relax_to_code_range(ValueRange.empty(), self.decomposition()) == (
            EMPTY_CODE_RANGE
        )


class TestCertainCodeRange:
    def test_fully_contained_buckets_only(self):
        d = Decomposition(base=0, total_bits=8, residual_bits=3)
        # [10, 30]: buckets fully inside are [16..23] (code 2)
        assert certain_code_range(ValueRange(10, 30), d) == (2, 2)

    def test_aligned_range_is_certain(self):
        d = Decomposition(base=0, total_bits=8, residual_bits=3)
        assert certain_code_range(ValueRange(16, 31), d) == (2, 3)

    def test_no_certain_bucket(self):
        d = Decomposition(base=0, total_bits=8, residual_bits=3)
        assert certain_code_range(ValueRange(17, 20), d) == EMPTY_CODE_RANGE

    def test_unbounded_side(self):
        d = Decomposition(base=0, total_bits=8, residual_bits=3)
        lo, hi = certain_code_range(ValueRange(17, None), d)
        assert (lo, hi) == (3, d.max_code)

    def test_zero_residual_certain_equals_candidates(self):
        d = Decomposition(base=0, total_bits=8, residual_bits=0)
        vr = ValueRange(10, 200)
        assert certain_code_range(vr, d) == relax_to_code_range(vr, d)

    def test_hi_below_first_bucket(self):
        d = Decomposition(base=0, total_bits=8, residual_bits=3)
        assert certain_code_range(ValueRange(None, 5), d) == EMPTY_CODE_RANGE


class TestIntervalMasks:
    def test_candidate_intersects(self):
        lo = np.array([0, 10, 20])
        hi = np.array([5, 15, 25])
        mask = candidate_mask_for_intervals(lo, hi, ValueRange(12, 22))
        assert np.array_equal(mask, [False, True, True])

    def test_certain_contained(self):
        lo = np.array([0, 12, 20])
        hi = np.array([5, 14, 25])
        mask = certain_mask_for_intervals(lo, hi, ValueRange(12, 22))
        assert np.array_equal(mask, [False, True, False])

    def test_empty_range_masks(self):
        lo, hi = np.array([1]), np.array([2])
        assert not candidate_mask_for_intervals(lo, hi, ValueRange.empty()).any()
        assert not certain_mask_for_intervals(lo, hi, ValueRange.empty()).any()

    def test_certain_implies_candidate(self):
        rng = np.random.default_rng(0)
        lo = rng.integers(0, 100, 200)
        hi = lo + rng.integers(0, 20, 200)
        vr = ValueRange(25, 60)
        certain = certain_mask_for_intervals(lo, hi, vr)
        candidate = candidate_mask_for_intervals(lo, hi, vr)
        assert np.all(~certain | candidate)


# ----------------------------------------------------------------------
# Property tests: DESIGN.md invariant 2 (soundness + tightness)
# ----------------------------------------------------------------------
_ops = st.sampled_from(
    [CompareOp.EQ, CompareOp.LT, CompareOp.LE, CompareOp.GT, CompareOp.GE]
)


@settings(max_examples=120, deadline=None)
@given(
    values=st.lists(st.integers(0, 1023), min_size=1, max_size=80),
    residual_bits=st.integers(0, 10),
    op=_ops,
    operand=st.integers(-5, 1030),
)
def test_property_relaxation_soundness(values, residual_bits, op, operand):
    """Every exact match is a candidate: relaxed ⊇ precise."""
    arr = np.array(values, dtype=np.int64)
    d = plan_decomposition(arr, residual_bits=residual_bits)
    approx, _ = d.split(arr)
    vr = ValueRange.from_comparison(op, operand)
    lo_code, hi_code = relax_to_code_range(vr, d)
    candidate = (approx.astype(np.int64) >= lo_code) & (
        approx.astype(np.int64) <= hi_code
    )
    precise = vr.evaluate(arr)
    assert np.all(~precise | candidate)


@settings(max_examples=120, deadline=None)
@given(
    values=st.lists(st.integers(0, 1023), min_size=1, max_size=80),
    residual_bits=st.integers(0, 10),
    op=_ops,
    operand=st.integers(0, 1023),
)
def test_property_certain_implies_precise(values, residual_bits, op, operand):
    """Certain rows satisfy the precise predicate for any residual."""
    arr = np.array(values, dtype=np.int64)
    d = plan_decomposition(arr, residual_bits=residual_bits)
    approx, _ = d.split(arr)
    vr = ValueRange.from_comparison(op, operand)
    lo_code, hi_code = certain_code_range(vr, d)
    certain = (approx.astype(np.int64) >= lo_code) & (
        approx.astype(np.int64) <= hi_code
    )
    precise = vr.evaluate(arr)
    assert np.all(~certain | precise)


@settings(max_examples=80, deadline=None)
@given(
    residual_bits=st.integers(0, 8),
    operand=st.integers(0, 255),
    op=_ops,
)
def test_property_relaxation_tightness(residual_bits, operand, op):
    """The relaxed code range is minimal: each boundary bucket contains a
    value satisfying the precise predicate (whenever the range is non-empty
    and within the domain)."""
    arr = np.arange(256, dtype=np.int64)
    d = plan_decomposition(arr, residual_bits=residual_bits)
    vr = ValueRange.from_comparison(op, operand)
    lo_code, hi_code = relax_to_code_range(vr, d)
    if lo_code > hi_code:
        return
    precise = vr.evaluate(arr)
    approx, _ = d.split(arr)
    for boundary in {lo_code, hi_code}:
        bucket_rows = approx.astype(np.int64) == boundary
        if bucket_rows.any():
            assert bool(precise[bucket_rows].any()), (
                f"boundary bucket {boundary} holds no true positive"
            )
