"""Tests for A&R theta joins (§IV-D / §VII-B extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.theta import (
    PairCandidates,
    Theta,
    ThetaOp,
    theta_join_approx,
    theta_join_refine,
    theta_join_reference,
)
from repro.device.machine import Machine
from repro.errors import ExecutionError
from repro.storage.decompose import decompose_values


@pytest.fixture()
def machine():
    return Machine.paper_testbed()


def loaded(machine, values, residual_bits, label):
    col = decompose_values(np.asarray(values), residual_bits=residual_bits)
    machine.gpu.load_column(label, col, None)
    return col


def pair_set(pairs) -> set[tuple[int, int]]:
    # Works for either pair representation (materialized or run-length).
    return pairs.pair_set()


class TestTheta:
    def test_exact_operators(self):
        l, r = np.array([1, 5]), np.array([3])
        assert Theta(ThetaOp.LT).exact(l[:, None], r[None, :]).tolist() == [[True], [False]]
        assert Theta(ThetaOp.GE).exact(l[:, None], r[None, :]).tolist() == [[False], [True]]
        assert Theta(ThetaOp.WITHIN, 2).exact(l[:, None], r[None, :]).tolist() == [[True], [True]]

    def test_band_needs_nonnegative_delta(self):
        with pytest.raises(ExecutionError):
            Theta(ThetaOp.WITHIN, -1)

    def test_certain_implies_exact_everywhere(self):
        rng = np.random.default_rng(0)
        lo_l = rng.integers(0, 50, 40)
        hi_l = lo_l + rng.integers(0, 10, 40)
        lo_r = rng.integers(0, 50, 40)
        hi_r = lo_r + rng.integers(0, 10, 40)
        for op in ThetaOp:
            theta = Theta(op, delta=5)
            certain = theta.certain(lo_l, hi_l, lo_r, hi_r)
            # sample extreme corners: θ must hold at all of them
            for a, b in ((lo_l, lo_r), (lo_l, hi_r), (hi_l, lo_r), (hi_l, hi_r)):
                assert np.all(~certain | theta.exact(a, b)), op

    def test_pair_candidates_validation(self):
        with pytest.raises(ExecutionError):
            PairCandidates(np.array([1, 2]), np.array([1]))


class TestThetaJoinPair:
    @pytest.mark.parametrize("op", list(ThetaOp))
    def test_approx_superset_refine_exact(self, machine, op):
        rng = np.random.default_rng(hash(op.value) % 100)
        left_v = rng.integers(0, 500, 300)
        right_v = rng.integers(0, 500, 40)
        left = loaded(machine, left_v, 4, "l")
        right = loaded(machine, right_v, 3, "r")
        theta = Theta(op, delta=8)
        tl = machine.new_timeline()

        candidates = theta_join_approx(machine.gpu, tl, left, right, theta)
        truth = theta_join_reference(left_v, right_v, theta)
        assert pair_set(truth) <= pair_set(candidates)

        refined = theta_join_refine(machine.cpu, tl, left, right, theta, candidates)
        assert pair_set(refined) == pair_set(truth)

    def test_fully_resident_inputs_have_no_false_positives(self, machine):
        left_v = np.array([1, 10, 20])
        right_v = np.array([5, 15])
        left = loaded(machine, left_v, 0, "l")
        right = loaded(machine, right_v, 0, "r")
        tl = machine.new_timeline()
        theta = Theta(ThetaOp.LT)
        candidates = theta_join_approx(machine.gpu, tl, left, right, theta)
        assert pair_set(candidates) == pair_set(
            theta_join_reference(left_v, right_v, theta)
        )

    def test_empty_candidates_refine(self, machine):
        left = loaded(machine, np.array([100]), 0, "l")
        right = loaded(machine, np.array([1]), 0, "r")
        tl = machine.new_timeline()
        pairs = theta_join_approx(machine.gpu, tl, left, right, Theta(ThetaOp.LT))
        assert len(pairs) == 0
        refined = theta_join_refine(
            machine.cpu, tl, left, right, Theta(ThetaOp.LT), pairs
        )
        assert len(refined) == 0

    def test_cost_reflects_nested_loop(self, machine):
        left = loaded(machine, np.arange(2000), 4, "l")
        right = loaded(machine, np.arange(100), 4, "r")
        tl = machine.new_timeline()
        theta_join_approx(machine.gpu, tl, left, right, Theta(ThetaOp.EQ))
        gpu_seconds = tl.seconds_by_kind()["gpu"]
        # 2000 x 100 comparisons at the GPU arithmetic rate dominate
        assert gpu_seconds >= 2000 * 100 * 0.4e-9

    def test_tiling_boundary(self, machine):
        """Left side larger than one tile still joins correctly."""
        rng = np.random.default_rng(5)
        left_v = rng.integers(0, 100, 5000)
        right_v = rng.integers(0, 100, 7)
        left = loaded(machine, left_v, 2, "l")
        right = loaded(machine, right_v, 2, "r")
        tl = machine.new_timeline()
        theta = Theta(ThetaOp.EQ)
        refined = theta_join_refine(
            machine.cpu, tl, left, right, theta,
            theta_join_approx(machine.gpu, tl, left, right, theta),
        )
        assert pair_set(refined) == pair_set(
            theta_join_reference(left_v, right_v, theta)
        )


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    residual=st.integers(0, 6),
    op=st.sampled_from(list(ThetaOp)),
    delta=st.integers(0, 20),
)
def test_property_theta_ar_equals_reference(seed, residual, op, delta):
    machine = Machine.paper_testbed()
    rng = np.random.default_rng(seed)
    left_v = rng.integers(0, 200, 80)
    right_v = rng.integers(0, 200, 30)
    left = decompose_values(left_v, residual_bits=residual)
    right = decompose_values(right_v, residual_bits=residual)
    machine.gpu.load_column("l", left, None)
    machine.gpu.load_column("r", right, None)
    theta = Theta(op, delta=delta)
    tl = machine.new_timeline()
    refined = theta_join_refine(
        machine.cpu, tl, left, right, theta,
        theta_join_approx(machine.gpu, tl, left, right, theta),
    )
    truth = theta_join_reference(left_v, right_v, theta)
    assert pair_set(refined) == pair_set(truth)
