"""The sort-based interval join and the order-insensitive pair contract.

PERFORMANCE.md's PR-2 contract, pinned here:

1. the sorted strategy emits exactly the same candidate-pair *set* as the
   brute-force nested-loop oracle for every θ (property-tested over
   duplicate/tied bounds, empty inputs and single-row sides),
2. modeled Timeline charges are byte-identical whichever strategy produced
   the set, and whether the column caches are cold or warm,
3. order exists only at final materialization (canonicalization), never
   between pipeline operators.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidates import PairCandidates
from repro.core.theta import (
    Theta,
    ThetaOp,
    theta_join_approx,
    theta_join_refine,
    theta_join_reference,
)
from repro.device.machine import Machine
from repro.errors import ExecutionError
from repro.storage.decompose import BwdColumn, decompose_values


@pytest.fixture()
def machine():
    return Machine.paper_testbed()


def loaded(machine, values, residual_bits, label):
    col = decompose_values(np.asarray(values), residual_bits=residual_bits)
    machine.gpu.load_column(label, col, None)
    return col


def empty_like(col: BwdColumn) -> BwdColumn:
    """A zero-row column sharing ``col``'s decomposition."""
    residual = (
        np.empty(0, dtype=np.uint64) if col.decomposition.residual_bits else None
    )
    return BwdColumn(col.decomposition, 0, np.empty(0, dtype=np.uint64), residual)


def spans_of(timeline):
    return [
        (s.device, s.kind, s.op, s.nbytes, s.seconds, s.phase)
        for s in timeline._spans
    ]


class TestPairContract:
    def test_canonicalized_sorts_lexicographically(self):
        pairs = PairCandidates(np.array([2, 0, 2, 1]), np.array([1, 5, 0, 3]))
        out = pairs.canonicalized()
        assert out.left_positions.tolist() == [0, 1, 2, 2]
        assert out.right_positions.tolist() == [5, 3, 0, 1]

    def test_set_equals_ignores_order(self):
        a = PairCandidates(np.array([0, 1, 2]), np.array([5, 4, 3]))
        b = PairCandidates(np.array([2, 0, 1]), np.array([3, 5, 4]))
        assert a.set_equals(b)
        assert b.set_equals(a)
        assert not a.set_equals(PairCandidates(np.array([0, 1]), np.array([5, 4])))
        assert not a.set_equals(
            PairCandidates(np.array([0, 1, 2]), np.array([5, 4, 9]))
        )

    def test_narrowed_is_order_agnostic(self):
        pairs = PairCandidates(np.array([3, 1, 2]), np.array([0, 1, 2]))
        keep = np.array([True, False, True])
        out = pairs.narrowed(keep)
        assert out.pair_set() == {(3, 0), (2, 2)}

    def test_unknown_strategy_rejected(self, machine):
        left = loaded(machine, np.arange(10), 2, "l")
        right = loaded(machine, np.arange(10), 2, "r")
        with pytest.raises(ExecutionError):
            theta_join_approx(
                machine.gpu, machine.new_timeline(), left, right,
                Theta(ThetaOp.LT), strategy="quantum",
            )


class TestSortedEqualsBruteforce:
    @pytest.mark.parametrize("op", list(ThetaOp))
    def test_pair_set_and_timeline_identical(self, machine, op):
        rng = np.random.default_rng(hash(op.value) % 1000)
        left_v = rng.integers(0, 300, 400)
        right_v = rng.integers(0, 300, 150)
        left = loaded(machine, left_v, 4, "l")
        right = loaded(machine, right_v, 3, "r")
        theta = Theta(op, delta=9)

        tl_sorted, tl_brute = machine.new_timeline(), machine.new_timeline()
        sorted_pairs = theta_join_approx(
            machine.gpu, tl_sorted, left, right, theta, strategy="sorted"
        )
        brute_pairs = theta_join_approx(
            machine.gpu, tl_brute, left, right, theta, strategy="bruteforce"
        )
        assert sorted_pairs.set_equals(brute_pairs)
        assert spans_of(tl_sorted) == spans_of(tl_brute)

        refined = theta_join_refine(
            machine.cpu, tl_sorted, left, right, theta, sorted_pairs
        )
        truth = theta_join_reference(left_v, right_v, theta)
        assert refined.pair_set() == truth.pair_set()

    @pytest.mark.parametrize("op", list(ThetaOp))
    def test_duplicate_and_tied_bounds(self, machine, op):
        # Heavy ties: few distinct values, buckets collapse many rows onto
        # identical interval bounds on both sides.
        left_v = np.array([5, 5, 5, 10, 10, 0, 15, 15, 15, 15])
        right_v = np.array([5, 5, 10, 10, 10, 15, 0, 0])
        left = loaded(machine, left_v, 2, "l")
        right = loaded(machine, right_v, 2, "r")
        theta = Theta(op, delta=3)
        sorted_pairs = theta_join_approx(
            machine.gpu, machine.new_timeline(), left, right, theta,
            strategy="sorted",
        )
        brute_pairs = theta_join_approx(
            machine.gpu, machine.new_timeline(), left, right, theta,
            strategy="bruteforce",
        )
        assert sorted_pairs.set_equals(brute_pairs)

    @pytest.mark.parametrize("op", list(ThetaOp))
    @pytest.mark.parametrize("empty_side", ["left", "right", "both"])
    def test_empty_inputs(self, machine, op, empty_side):
        template = loaded(machine, np.arange(20), 2, "l")
        left = empty_like(template) if empty_side in ("left", "both") else template
        right = empty_like(template) if empty_side in ("right", "both") else template
        theta = Theta(op, delta=2)
        for strategy in ("sorted", "bruteforce"):
            pairs = theta_join_approx(
                machine.gpu, machine.new_timeline(), left, right, theta,
                strategy=strategy,
            )
            assert len(pairs) == 0
            refined = theta_join_refine(
                machine.cpu, machine.new_timeline(), left, right, theta, pairs
            )
            assert len(refined) == 0

    @pytest.mark.parametrize("op", list(ThetaOp))
    def test_single_row_sides(self, machine, op):
        for i, (left_v, right_v) in enumerate((
            ([7], [7]), ([7], [3, 7, 20]), ([1, 5, 9], [5]), ([0], [64]),
        )):
            left = loaded(machine, np.array(left_v), 1, f"l{i}")
            right = loaded(machine, np.array(right_v), 1, f"r{i}")
            theta = Theta(op, delta=4)
            sorted_pairs = theta_join_approx(
                machine.gpu, machine.new_timeline(), left, right, theta,
                strategy="sorted",
            )
            brute_pairs = theta_join_approx(
                machine.gpu, machine.new_timeline(), left, right, theta,
                strategy="bruteforce",
            )
            assert sorted_pairs.set_equals(brute_pairs)

    def test_auto_picks_bruteforce_for_tiny_right_side(self, machine):
        """The tiled oracle path stays live as the auto fallback."""
        left = loaded(machine, np.arange(100), 2, "l")
        right = loaded(machine, np.arange(5), 2, "r")
        theta = Theta(ThetaOp.LE)
        auto = theta_join_approx(
            machine.gpu, machine.new_timeline(), left, right, theta
        )
        brute = theta_join_approx(
            machine.gpu, machine.new_timeline(), left, right, theta,
            strategy="bruteforce",
        )
        # identical emission order proves the same (tiled) producer ran
        assert np.array_equal(auto.left_positions, brute.left_positions)
        assert np.array_equal(auto.right_positions, brute.right_positions)


class TestColdWarmTimelineIdentity:
    """Mirrors tests/storage/test_code_cache.py for the join path: cold
    (packed-stream) and warm (cached-view) executions must charge
    byte-identical modeled timelines."""

    @staticmethod
    def _cold_column(values, residual_bits):
        warm = decompose_values(np.asarray(values), residual_bits=residual_bits)
        return BwdColumn(
            warm.decomposition, warm.length,
            warm._approx_words, warm._residual_words,
        )

    @pytest.mark.parametrize("strategy", ["sorted", "bruteforce"])
    def test_join_cold_equals_warm(self, machine, strategy):
        rng = np.random.default_rng(11)
        left_v = rng.integers(0, 2000, 600)
        right_v = rng.integers(0, 2000, 200)
        theta = Theta(ThetaOp.WITHIN, 16)
        results = []
        for cold in (True, False):
            if cold:
                left = self._cold_column(left_v, 4)
                right = self._cold_column(right_v, 4)
            else:
                left = decompose_values(left_v, residual_bits=4)
                right = decompose_values(right_v, residual_bits=4)
            tl = machine.new_timeline()
            pairs = theta_join_approx(
                machine.gpu, tl, left, right, theta, strategy=strategy
            )
            # repeat on the now-warm column: spans must repeat identically
            theta_join_approx(
                machine.gpu, tl, left, right, theta, strategy=strategy
            )
            refined = theta_join_refine(
                machine.cpu, tl, left, right, theta, pairs
            )
            results.append((spans_of(tl), sorted(refined.pair_set())))
        assert results[0] == results[1]
        first_join, repeat_join = results[0][0][0], results[0][0][1]
        assert first_join == repeat_join


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    residual_left=st.integers(0, 6),
    residual_right=st.integers(0, 6),
    op=st.sampled_from(list(ThetaOp)),
    delta=st.integers(0, 25),
    domain=st.sampled_from([4, 40, 4000]),
    n_left=st.integers(1, 90),
    n_right=st.integers(1, 70),
)
def test_property_sorted_pair_set_equals_oracle(
    seed, residual_left, residual_right, op, delta, domain, n_left, n_right
):
    """The sorted join's candidate-pair set equals the brute-force oracle's
    across every θ, asymmetric residual widths, tiny tied domains and
    single-row sides — and charges an identical modeled timeline."""
    machine = Machine.paper_testbed()
    rng = np.random.default_rng(seed)
    left_v = rng.integers(0, domain, n_left)
    right_v = rng.integers(0, domain, n_right)
    left = decompose_values(left_v, residual_bits=residual_left)
    right = decompose_values(right_v, residual_bits=residual_right)
    machine.gpu.load_column("l", left, None)
    machine.gpu.load_column("r", right, None)
    theta = Theta(op, delta=delta)

    tl_sorted, tl_brute = machine.new_timeline(), machine.new_timeline()
    sorted_pairs = theta_join_approx(
        machine.gpu, tl_sorted, left, right, theta, strategy="sorted"
    )
    brute_pairs = theta_join_approx(
        machine.gpu, tl_brute, left, right, theta, strategy="bruteforce"
    )
    assert sorted_pairs.set_equals(brute_pairs)
    assert spans_of(tl_sorted) == spans_of(tl_brute)

    refined = theta_join_refine(
        machine.cpu, tl_sorted, left, right, theta, sorted_pairs
    )
    truth = theta_join_reference(left_v, right_v, theta)
    assert refined.pair_set() == truth.pair_set()
