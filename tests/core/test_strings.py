"""Tests for fixed-length string-prefix approximation (§VII-B extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.strings import (
    StringPredicate,
    StringPrefixColumn,
    encode_prefix,
    string_select_approx,
    string_select_refine,
)
from repro.device.machine import Machine
from repro.errors import ExecutionError

WORDS = [
    "alpha", "alphabet", "beta", "gamma", "gamut", "delta", "del",
    "promo brushed", "promo plated", "standard tin", "", "zz", "promo",
]


@pytest.fixture()
def machine():
    return Machine.paper_testbed()


def run_ar(machine, column, predicate):
    tl = machine.new_timeline()
    candidates = string_select_approx(machine.gpu, tl, column, predicate)
    refined = string_select_refine(machine.cpu, tl, column, predicate, candidates)
    return candidates, refined, tl


class TestEncodePrefix:
    def test_order_preserving(self):
        assert encode_prefix("abc", 4) < encode_prefix("abd", 4)
        assert encode_prefix("ab", 4) < encode_prefix("abc", 4)
        assert encode_prefix("b", 4) > encode_prefix("azzz", 4)

    def test_truncation(self):
        assert encode_prefix("alphabet", 4) == encode_prefix("alpha", 4)

    def test_empty_string(self):
        assert encode_prefix("", 4) == 0

    def test_width_validation(self):
        with pytest.raises(ExecutionError):
            encode_prefix("x", 0)
        with pytest.raises(ExecutionError):
            encode_prefix("x", 9)


class TestStringPrefixColumn:
    def test_footprints(self):
        col = StringPrefixColumn(WORDS, prefix_bytes=4)
        assert col.device_nbytes == len(WORDS) * 4  # fixed width!
        assert col.host_nbytes == sum(len(w.encode()) for w in WORDS)
        assert len(col) == len(WORDS)
        assert col.string_at(2) == "beta"

    def test_invalid_width(self):
        with pytest.raises(ExecutionError):
            StringPrefixColumn(WORDS, prefix_bytes=0)


class TestPredicates:
    def test_equality(self, machine):
        col = StringPrefixColumn(WORDS, prefix_bytes=4)
        cand, refined, _ = run_ar(machine, col, StringPredicate.equals("alpha"))
        # "alphabet" shares the 4-byte prefix: candidate but not result
        assert WORDS.index("alphabet") in cand
        assert refined.tolist() == [WORDS.index("alpha")]

    def test_prefix_short_needs_no_refinement(self, machine):
        col = StringPrefixColumn(WORDS, prefix_bytes=4)
        pred = StringPredicate.startswith("pro")
        cand, refined, tl = run_ar(machine, col, pred)
        expected = [i for i, w in enumerate(WORDS) if w.startswith("pro")]
        assert sorted(refined.tolist()) == expected
        assert np.array_equal(cand, refined)  # no false positives
        assert "cpu" not in tl.seconds_by_kind()  # refinement skipped

    def test_prefix_longer_than_code(self, machine):
        col = StringPrefixColumn(WORDS, prefix_bytes=4)
        pred = StringPredicate.startswith("promo b")
        cand, refined, _ = run_ar(machine, col, pred)
        assert sorted(refined.tolist()) == [WORDS.index("promo brushed")]
        assert set(refined) <= set(cand)

    def test_range(self, machine):
        col = StringPrefixColumn(WORDS, prefix_bytes=4)
        pred = StringPredicate.between("beta", "gamma")
        _, refined, _ = run_ar(machine, col, pred)
        expected = sorted(i for i, w in enumerate(WORDS) if "beta" <= w <= "gamma")
        assert sorted(refined.tolist()) == expected

    def test_unknown_kind(self):
        with pytest.raises(ExecutionError):
            StringPredicate("like", "x").code_range(4)
        with pytest.raises(ExecutionError):
            StringPredicate("like", "x").evaluate_exact(["a"])

    def test_empty_candidates_short_circuit(self, machine):
        col = StringPrefixColumn(["aaa"], prefix_bytes=4)
        pred = StringPredicate.equals("zzz")
        cand, refined, _ = run_ar(machine, col, pred)
        assert cand.size == 0 and refined.size == 0


_word = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=12
)


@settings(max_examples=60, deadline=None)
@given(
    words=st.lists(_word, min_size=1, max_size=40),
    needle=_word,
    prefix_bytes=st.integers(1, 8),
    kind=st.sampled_from(["eq", "prefix"]),
)
def test_property_string_ar_soundness(words, needle, prefix_bytes, kind):
    """Candidates ⊇ exact matches; refinement ≡ exact evaluation."""
    machine = Machine.paper_testbed()
    col = StringPrefixColumn(words, prefix_bytes=prefix_bytes)
    pred = (
        StringPredicate.equals(needle) if kind == "eq"
        else StringPredicate.startswith(needle)
    )
    tl = machine.new_timeline()
    cand = string_select_approx(machine.gpu, tl, col, pred)
    refined = string_select_refine(machine.cpu, tl, col, pred, cand)
    truth = np.flatnonzero(pred.evaluate_exact(words))
    assert set(truth) <= set(cand.tolist())
    assert sorted(refined.tolist()) == sorted(truth.tolist())


@settings(max_examples=60, deadline=None)
@given(
    words=st.lists(_word, min_size=1, max_size=30),
    lo=_word, hi=_word,
    prefix_bytes=st.integers(1, 8),
)
def test_property_string_range_soundness(words, lo, hi, prefix_bytes):
    if lo > hi:
        lo, hi = hi, lo
    machine = Machine.paper_testbed()
    col = StringPrefixColumn(words, prefix_bytes=prefix_bytes)
    pred = StringPredicate.between(lo, hi)
    tl = machine.new_timeline()
    cand = string_select_approx(machine.gpu, tl, col, pred)
    refined = string_select_refine(machine.cpu, tl, col, pred, cand)
    truth = sorted(np.flatnonzero(pred.evaluate_exact(words)).tolist())
    assert sorted(refined.tolist()) == truth
