"""Tests for the paired A&R operators: approximate halves vs refined truth.

These are the operator-level correctness theorems: for random data, random
decompositions and random predicates, the approximation yields a superset
and the refinement yields exactly what a classic full-precision operator
would (DESIGN.md invariant 5 at operator granularity).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.approximate import (
    avg_approx,
    count_approx,
    fk_join_approx,
    minmax_approx,
    project_approx,
    select_approx,
    select_approx_narrow,
    select_on_payload_approx,
    sum_approx,
)
from repro.core.candidates import Approximation
from repro.core.refine import (
    align_via_translucent,
    avg_refine,
    count_refine,
    fk_join_refine,
    minmax_refine,
    project_refine,
    reconstruct_exact,
    select_refine,
    ship_candidates,
    sum_refine,
)
from repro.core.relax import ValueRange
from repro.device.machine import Machine
from repro.errors import ExecutionError
from repro.storage.decompose import decompose_values


@pytest.fixture()
def machine():
    return Machine.paper_testbed()


def load(machine, values, residual_bits, label="col"):
    col = decompose_values(np.asarray(values), residual_bits=residual_bits)
    machine.gpu.load_column(label, col, None)
    return col


def full_candidates(n):
    """An all-rows candidate set (the scan of an unfiltered table)."""
    return Approximation(ids=np.arange(n, dtype=np.int64))


class TestSelectPair:
    def test_approx_is_superset_refine_is_exact(self, machine):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 10_000, 5_000)
        col = load(machine, values, residual_bits=6)
        tl = machine.new_timeline()
        vr = ValueRange.between(2_500, 5_000)

        approx = select_approx(machine.gpu, tl, col, "a", vr)
        truth = np.flatnonzero(vr.evaluate(values))
        assert set(truth) <= set(approx.ids)
        assert not approx.exact

        ship_candidates(machine.bus, tl, approx, payload_bytes_per_row=4)
        refined = select_refine(machine.cpu, tl, col, "a", vr, approx)
        assert set(refined.ids) == set(truth)
        assert np.array_equal(
            np.sort(refined.payload("a").lo), np.sort(values[truth])
        )
        assert refined.payload("a").is_exact

    def test_zero_residual_is_exact_and_refine_is_noop(self, machine):
        values = np.arange(1_000)
        col = load(machine, values, residual_bits=0)
        tl = machine.new_timeline()
        vr = ValueRange.between(10, 20)
        approx = select_approx(machine.gpu, tl, col, "a", vr)
        assert approx.exact
        assert set(approx.ids) == set(range(10, 21))
        refined = select_refine(machine.cpu, tl, col, "a", vr, approx)
        assert refined is approx

    def test_scramble_breaks_order_but_not_results(self, machine):
        values = np.arange(2_000)
        col = load(machine, values, residual_bits=4)
        tl = machine.new_timeline()
        vr = ValueRange.between(100, 1500)
        approx = select_approx(machine.gpu, tl, col, "a", vr, scramble=True)
        assert not approx.order_preserved
        assert not np.all(np.diff(approx.ids) > 0)  # genuinely scrambled
        refined = select_refine(machine.cpu, tl, col, "a", vr, approx)
        assert set(refined.ids) == set(range(100, 1501))

    def test_conjunction_via_narrow(self, machine):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 1000, 3_000)
        b = rng.integers(0, 1000, 3_000)
        col_a = load(machine, a, residual_bits=5, label="a")
        col_b = load(machine, b, residual_bits=5, label="b")
        tl = machine.new_timeline()
        vr_a, vr_b = ValueRange(100, 400), ValueRange(500, 900)

        cand = select_approx(machine.gpu, tl, col_a, "a", vr_a)
        cand = select_approx_narrow(machine.gpu, tl, col_b, "b", vr_b, cand)
        truth = np.flatnonzero(vr_a.evaluate(a) & vr_b.evaluate(b))
        assert set(truth) <= set(cand.ids)

        refined = select_refine(machine.cpu, tl, col_a, "a", vr_a, cand)
        refined = select_refine(machine.cpu, tl, col_b, "b", vr_b, refined)
        assert set(refined.ids) == set(truth)

    def test_empty_result(self, machine):
        values = np.arange(100)
        col = load(machine, values, residual_bits=3)
        tl = machine.new_timeline()
        vr = ValueRange.between(1_000, 2_000)
        approx = select_approx(machine.gpu, tl, col, "a", vr)
        assert len(approx) == 0
        refined = select_refine(machine.cpu, tl, col, "a", vr, approx)
        assert len(refined) == 0

    def test_timeline_records_phases(self, machine):
        values = np.arange(1_000)
        col = load(machine, values, residual_bits=4)
        tl = machine.new_timeline()
        vr = ValueRange.between(0, 500)
        approx = select_approx(machine.gpu, tl, col, "a", vr)
        ship_candidates(machine.bus, tl, approx, 4)
        select_refine(machine.cpu, tl, col, "a", vr, approx)
        kinds = tl.seconds_by_kind()
        assert set(kinds) == {"gpu", "bus", "cpu"}
        assert tl.approximate_seconds() > 0
        assert tl.refine_seconds() > 0


class TestProjectPair:
    def test_project_then_refine_matches_gather(self, machine):
        rng = np.random.default_rng(2)
        sel = rng.integers(0, 1000, 4_000)
        prj = rng.integers(0, 100_000, 4_000)
        col_sel = load(machine, sel, residual_bits=4, label="sel")
        col_prj = load(machine, prj, residual_bits=8, label="prj")
        tl = machine.new_timeline()
        vr = ValueRange(200, 600)

        cand = select_approx(machine.gpu, tl, col_sel, "sel", vr)
        cand = project_approx(machine.gpu, tl, col_prj, "prj", cand)
        assert not cand.payload("prj").is_exact
        refined = select_refine(machine.cpu, tl, col_sel, "sel", vr, cand)
        refined = project_refine(machine.cpu, tl, col_prj, "prj", refined)

        expected = {i: prj[i] for i in np.flatnonzero(vr.evaluate(sel))}
        got = dict(zip(refined.ids.tolist(), refined.payload("prj").lo.tolist()))
        assert got == expected

    def test_fully_resident_projection_needs_no_refinement(self, machine):
        prj = np.arange(500) * 3
        col_prj = load(machine, prj, residual_bits=0, label="prj")
        tl = machine.new_timeline()
        cand = full_candidates(500)
        cand = project_approx(machine.gpu, tl, col_prj, "prj", cand)
        assert cand.payload("prj").is_exact
        out = project_refine(machine.cpu, tl, col_prj, "prj", cand)
        assert np.array_equal(out.payload("prj").lo, prj)


class TestTranslucentAlignment:
    def test_align_payload_with_refined_subset(self, machine):
        """Fig 3's join of SELECT(refine) output with PROJECT(approximate)."""
        rng = np.random.default_rng(3)
        sel = rng.integers(0, 100, 2_000)
        col_sel = load(machine, sel, residual_bits=3, label="sel")
        prj = rng.integers(0, 50_000, 2_000)
        col_prj = load(machine, prj, residual_bits=0, label="prj")
        tl = machine.new_timeline()
        vr = ValueRange(10, 60)

        cand = select_approx(machine.gpu, tl, col_sel, "sel", vr)
        cand = project_approx(machine.gpu, tl, col_prj, "prj", cand)
        refined = select_refine(machine.cpu, tl, col_sel, "sel", vr, cand)

        aligned = align_via_translucent(machine.cpu, tl, cand, refined.ids)
        assert np.array_equal(aligned.ids, refined.ids)
        assert np.array_equal(aligned.payload("prj").lo, prj[refined.ids])


class TestFkJoinPair:
    def test_fk_join_gathers_dimension_values(self, machine):
        rng = np.random.default_rng(4)
        dim = rng.integers(0, 1000, 128)  # dimension payload
        fk = rng.integers(0, 128, 5_000)  # fact fks
        col_fk = load(machine, fk, residual_bits=0, label="fk")
        col_dim = load(machine, dim, residual_bits=0, label="dim")
        tl = machine.new_timeline()
        cand = full_candidates(5_000)
        cand = fk_join_approx(machine.gpu, tl, col_fk, col_dim, "dim", cand)
        assert np.array_equal(cand.payload("dim").lo, dim[fk])
        assert cand.payload("dim").is_exact

    def test_fk_join_with_decomposed_target(self, machine):
        rng = np.random.default_rng(5)
        dim = rng.integers(0, 100_000, 64)
        fk = rng.integers(0, 64, 1_000)
        col_fk = load(machine, fk, residual_bits=0, label="fk")
        col_dim = load(machine, dim, residual_bits=8, label="dim")
        tl = machine.new_timeline()
        cand = fk_join_approx(
            machine.gpu, tl, col_fk, col_dim, "dim", full_candidates(1_000)
        )
        payload = cand.payload("dim")
        assert np.all(payload.lo <= dim[fk])
        assert np.all(dim[fk] <= payload.hi)
        refined = fk_join_refine(machine.cpu, tl, col_dim, "dim", cand)
        assert np.array_equal(refined.payload("dim").lo, dim[fk])
        assert refined.payload("dim").is_exact

    def test_lossy_fk_rejected(self, machine):
        fk = np.arange(1_000) % 64
        dim = np.arange(64)
        col_fk = load(machine, fk, residual_bits=2, label="fk")
        col_dim = load(machine, dim, residual_bits=0, label="dim")
        with pytest.raises(ExecutionError):
            fk_join_approx(
                machine.gpu, machine.new_timeline(), col_fk, col_dim, "dim",
                full_candidates(1_000),
            )


class TestPayloadSelect:
    def test_select_on_computed_bounds(self, machine):
        values = np.arange(0, 1000)
        col = load(machine, values, residual_bits=4)
        tl = machine.new_timeline()
        cand = full_candidates(1000)
        cand = project_approx(machine.gpu, tl, col, "v", cand)
        vr = ValueRange(100, 200)
        narrowed = select_on_payload_approx(tl, machine.gpu, cand, "v", vr)
        truth = np.flatnonzero(vr.evaluate(values))
        assert set(truth) <= set(narrowed.ids)


class TestAggregates:
    def setup_candidates(self, machine, values, residual_bits, vrange):
        col = load(machine, values, residual_bits=residual_bits)
        tl = machine.new_timeline()
        cand = select_approx(machine.gpu, tl, col, "v", vrange)
        return col, tl, cand

    def test_count_bounds_and_refined_count(self, machine):
        rng = np.random.default_rng(6)
        values = rng.integers(0, 1000, 4_000)
        vr = ValueRange(100, 300)
        col, tl, cand = self.setup_candidates(machine, values, 5, vr)
        bounds = count_approx(machine.gpu, tl, cand, [("v", vr)])
        truth = int(vr.evaluate(values).sum())
        assert bounds.lo <= truth <= bounds.hi
        refined = select_refine(machine.cpu, tl, col, "v", vr, cand)
        assert count_refine(machine.cpu, tl, refined) == truth

    def test_sum_bounds_contain_truth(self, machine):
        rng = np.random.default_rng(7)
        values = rng.integers(0, 10_000, 3_000)
        vr = ValueRange(2_000, 8_000)
        col, tl, cand = self.setup_candidates(machine, values, 6, vr)
        refined = select_refine(machine.cpu, tl, col, "v", vr, cand)
        truth = int(values[vr.evaluate(values)].sum())
        # the approximate sum over *refined* candidates brackets the truth
        bounds = sum_approx(machine.gpu, tl, refined, "v")
        assert bounds.lo <= truth <= bounds.hi
        assert sum_refine(
            machine.cpu, tl, refined.payload("v").lo, "v"
        ) == truth

    def test_avg_bounds_and_refined(self, machine):
        rng = np.random.default_rng(8)
        values = rng.integers(0, 1000, 2_000)
        vr = ValueRange(None, None)
        col, tl, cand = self.setup_candidates(machine, values, 4, vr)
        bounds = avg_approx(machine.gpu, tl, cand, "v")
        assert bounds.lo <= float(values.mean()) <= bounds.hi
        exact = reconstruct_exact(machine.cpu, tl, col, "v", cand)
        assert avg_refine(machine.cpu, tl, exact, "v") == pytest.approx(
            values[cand.ids].mean()
        )

    def test_minmax_candidate_contains_true_min(self, machine):
        """Fig 6's hazard: the false positive with the smallest approximate
        value must not evict the true minimum from the candidate set."""
        rng = np.random.default_rng(9)
        x = rng.integers(0, 1000, 5_000)
        y = rng.integers(0, 1000, 5_000)
        col_x = load(machine, x, residual_bits=6, label="x")
        col_y = load(machine, y, residual_bits=6, label="y")
        tl = machine.new_timeline()
        vr = ValueRange(600, None)  # x > 599

        cand = select_approx(machine.gpu, tl, col_x, "x", vr)
        cand = project_approx(machine.gpu, tl, col_y, "y", cand)
        pruned = minmax_approx(
            machine.gpu, tl, cand, "y", [("x", vr)], find_min=True
        )
        qualifying = vr.evaluate(x)
        true_min_ids = np.flatnonzero(qualifying & (y == y[qualifying].min()))
        assert set(true_min_ids) & set(pruned.ids), "true minimum evicted"

        # full refinement: exact selection, then exact min
        refined = select_refine(machine.cpu, tl, col_x, "x", vr, pruned)
        refined = project_refine(machine.cpu, tl, col_y, "y", refined)
        got = minmax_refine(
            machine.cpu, tl, refined.payload("y").lo, "y", find_min=True
        )
        assert got == int(y[qualifying].min())

    def test_minmax_empty_rejected(self, machine):
        with pytest.raises(ExecutionError):
            minmax_refine(
                machine.cpu, machine.new_timeline(), np.array([], dtype=np.int64),
                "v", find_min=True,
            )

    def test_avg_empty_rejected(self, machine):
        with pytest.raises(ExecutionError):
            avg_refine(machine.cpu, machine.new_timeline(), np.array([]), "v")


# ----------------------------------------------------------------------
# Property: the operator-level A&R theorem for selections
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    residual_bits=st.integers(0, 10),
    lo=st.integers(0, 900),
    width=st.integers(0, 400),
)
def test_property_select_pair_equals_classic(seed, residual_bits, lo, width):
    machine = Machine.paper_testbed()
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 1000, 700)
    col = decompose_values(values, residual_bits=residual_bits)
    machine.gpu.load_column("v", col, None)
    tl = machine.new_timeline()
    vr = ValueRange.between(lo, lo + width)

    approx = select_approx(machine.gpu, tl, col, "v", vr)
    refined = select_refine(machine.cpu, tl, col, "v", vr, approx)
    truth = set(np.flatnonzero(vr.evaluate(values)))
    assert truth <= set(approx.ids.tolist())
    assert set(refined.ids.tolist()) == truth
