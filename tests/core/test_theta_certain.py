"""The certain-pair lower bound of the approximate theta count (PR 5).

``ApproxPairAggregate`` used to report ``[0, candidates]``; the lower
bound is now the number of pairs whose buckets satisfy θ for *every*
residual assignment — computed with the same sorted sweeps as the
candidate runs, never materializing a pair.
"""

import numpy as np
import pytest

from repro import IntType, Session
from repro.core.theta import (
    Theta,
    ThetaOp,
    _bounds,
    theta_certain_pair_count,
    theta_join_reference,
)
from repro.storage.decompose import decompose_values

ALL_THETAS = [
    (ThetaOp.LT, 0), (ThetaOp.LE, 0), (ThetaOp.GT, 0), (ThetaOp.GE, 0),
    (ThetaOp.EQ, 0), (ThetaOp.WITHIN, 40), (ThetaOp.WITHIN, 700),
]


class TestCertainPairCount:
    @pytest.fixture(scope="class")
    def columns(self):
        rng = np.random.default_rng(31)
        lv = rng.integers(0, 16_000, 1_500)
        rv = rng.integers(0, 16_000, 400)
        left = decompose_values(lv, device_bits=24)  # 8 residual bits
        right = decompose_values(rv, device_bits=24)
        return lv, rv, left, right

    @pytest.mark.parametrize("op,delta", ALL_THETAS)
    def test_matches_brute_force_certainty(self, columns, op, delta):
        lv, rv, left, right = columns
        theta = Theta(op, delta)
        left_b, right_b = _bounds(left), _bounds(right)
        brute = int(theta.certain(
            left_b.lo[:, None], left_b.hi[:, None],
            right_b.lo[None, :], right_b.hi[None, :],
        ).sum())
        assert theta_certain_pair_count(left, right, theta) == brute

    @pytest.mark.parametrize("op,delta", ALL_THETAS)
    def test_lower_bounds_the_exact_join(self, columns, op, delta):
        lv, rv, left, right = columns
        theta = Theta(op, delta)
        certain = theta_certain_pair_count(left, right, theta)
        exact = len(theta_join_reference(lv, rv, theta))
        assert certain <= exact

    @pytest.mark.parametrize("op,delta", [(ThetaOp.WITHIN, 64), (ThetaOp.LT, 0),
                                          (ThetaOp.EQ, 0)])
    def test_exact_columns_make_certain_equal_exact(self, columns, op, delta):
        lv, rv, _, _ = columns
        theta = Theta(op, delta)
        left = decompose_values(lv, residual_bits=0)
        right = decompose_values(rv, residual_bits=0)
        assert theta_certain_pair_count(left, right, theta) == len(
            theta_join_reference(lv, rv, theta)
        )

    def test_left_ids_restrict_the_left_side(self, columns):
        lv, rv, left, right = columns
        theta = Theta(ThetaOp.GE, 0)
        ids = np.arange(0, len(lv), 3, dtype=np.int64)
        restricted = theta_certain_pair_count(left, right, theta, left_ids=ids)
        left_sub = decompose_values(lv[ids], device_bits=24)
        # Same decomposition domain is not guaranteed for the sliced data,
        # so compare against the brute-force certainty of the sliced bounds.
        left_b, right_b = _bounds(left), _bounds(right)
        brute = int(theta.certain(
            left_b.lo[ids][:, None], left_b.hi[ids][:, None],
            right_b.lo[None, :], right_b.hi[None, :],
        ).sum())
        assert restricted == brute
        assert left_sub.length == len(ids)  # silence the unused-var lint

    def test_empty_sides(self, columns):
        lv, rv, left, right = columns
        theta = Theta(ThetaOp.LT)
        empty = np.empty(0, dtype=np.int64)
        assert theta_certain_pair_count(left, right, theta, left_ids=empty) == 0


class TestEngineBound:
    @pytest.fixture(scope="class")
    def session(self):
        rng = np.random.default_rng(8)
        s = Session()
        s.create_table("L", {"x": IntType()}, {"x": rng.integers(0, 9_000, 2_000)})
        s.create_table("R", {"x": IntType()}, {"x": rng.integers(0, 9_000, 500)})
        s.bwdecompose("L", "x", 24)
        s.bwdecompose("R", "x", 24)
        return s

    @pytest.mark.parametrize("op,delta", [("within", 700), ("<", 0), (">=", 0)])
    def test_bound_brackets_the_exact_count(self, session, op, delta):
        result = (
            session.table("L").theta_join("R", on="x", op=op, delta=delta)
            .count("n").run(mode="ar")
        )
        bound = result.approximate.bound("n")
        exact = result.scalar("n")
        assert bound.lo <= exact <= bound.hi
        assert bound.lo > 0  # the old [0, candidates] floor is gone here

    def test_bound_is_strategy_independent(self, session):
        bounds = []
        for strategy in ("sorted", "bruteforce"):
            result = (
                session.table("L")
                .theta_join("R", on="x", op="within", delta=700,
                            strategy=strategy)
                .count("n").run(mode="ar")
            )
            bounds.append(result.approximate.bound("n"))
        assert bounds[0] == bounds[1]

    def test_selection_under_join_keeps_sound_zero_floor(self, session):
        # A WHERE clause may still drop left rows in refinement, so the
        # certain floor must stay 0 (conservative, sound).
        result = (
            session.table("L").where("x", "<=", 6_000)
            .theta_join("R", on="x", op="within", delta=700)
            .count("n").run(mode="ar")
        )
        bound = result.approximate.bound("n")
        assert bound.lo == 0
        assert bound.hi >= result.scalar("n")
