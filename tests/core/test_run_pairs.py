"""Run-length candidate pairs and the single-materialization-point rule.

PERFORMANCE.md's PR-3 contract, pinned here:

1. :class:`RunPairCandidates` is a faithful second implementation of the
   order-insensitive pair contract — ``__len__`` is the exact pair count,
   ``pair_set``/``set_equals`` compare across representations, and
   :meth:`canonicalized` is the one place runs explode into a materialized
   :class:`PairCandidates`,
2. every producer — brute force, sorted-materialized, sorted-runs — emits
   the same candidate pair *set*, and refinement lands on
   :func:`theta_join_reference` whichever representation flowed through,
3. modeled Timeline charges are byte-identical whether a join ran with
   materialized or run-length pairs, cold or warm, budget-evicted or not,
4. the memoized per-bound sort permutations behave like the decoded code
   views (read-only, shared, LRU-budgeted, rebuilt after eviction).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidates import PairCandidates, RunPairCandidates
from repro.core.theta import (
    Theta,
    ThetaOp,
    _refine_runs_chunked,
    theta_join_approx,
    theta_join_refine,
    theta_join_reference,
)
from repro.device.machine import Machine
from repro.engine.session import Session
from repro.errors import ExecutionError
from repro.storage.column import IntType
from repro.storage.decompose import decompose_values, set_view_budget


@pytest.fixture(autouse=True)
def unbounded_after():
    """Tests may cap the process-wide view budget; always restore it."""
    yield
    set_view_budget(None)


@pytest.fixture()
def machine():
    return Machine.paper_testbed()


def loaded(machine, values, residual_bits, label):
    col = decompose_values(np.asarray(values), residual_bits=residual_bits)
    machine.gpu.load_column(label, col, None)
    return col


def spans_of(timeline):
    return [
        (s.device, s.kind, s.op, s.nbytes, s.seconds, s.phase)
        for s in timeline._spans
    ]


# ----------------------------------------------------------------------
# The representation itself
# ----------------------------------------------------------------------
class TestRunPairCandidates:
    def sample(self) -> RunPairCandidates:
        # left 0 -> order[1:4], left 1 -> empty, left 2 -> order[0:2]
        return RunPairCandidates(
            left_positions=np.array([0, 1, 2]),
            starts=np.array([1, 2, 0]),
            stops=np.array([4, 2, 2]),
            order=np.array([30, 10, 20, 40]),
            order_key="lo",
        )

    def test_len_is_total_pair_count(self):
        assert len(self.sample()) == 5
        empty = RunPairCandidates(
            np.empty(0), np.empty(0), np.empty(0), np.empty(0)
        )
        assert len(empty) == 0

    def test_pair_set_and_materialized(self):
        runs = self.sample()
        expected = {(0, 10), (0, 20), (0, 40), (2, 30), (2, 10)}
        assert runs.pair_set() == expected
        mat = runs.materialized()
        assert isinstance(mat, PairCandidates)
        assert mat.pair_set() == expected
        assert len(mat) == len(runs)

    def test_canonicalized_is_materialized_and_sorted(self):
        out = self.sample().canonicalized()
        assert isinstance(out, PairCandidates)
        keys = list(zip(out.left_positions.tolist(), out.right_positions.tolist()))
        assert keys == sorted(keys)
        assert out.pair_set() == self.sample().pair_set()

    def test_set_equals_across_representations(self):
        runs = self.sample()
        mat = runs.materialized()
        shuffled = PairCandidates(
            mat.left_positions[::-1].copy(), mat.right_positions[::-1].copy()
        )
        assert runs.set_equals(shuffled)
        assert shuffled.set_equals(runs)
        assert runs.set_equals(runs.canonicalized())
        # Same total pair count, different pairs: left 0 loses order[3] and
        # left 1 gains order[2] instead.
        other = RunPairCandidates(
            runs.left_positions, np.array([1, 2, 0]), np.array([3, 3, 2]),
            runs.order,
        )
        assert len(other) == len(runs)
        assert not runs.set_equals(other)
        assert not other.set_equals(mat)

    def test_narrowed_mask_follows_run_order(self):
        runs = self.sample()
        enumerated = runs.materialized()
        keep = np.zeros(len(runs), dtype=bool)
        keep[[0, 3]] = True
        out = runs.narrowed(keep)
        assert out.pair_set() == {
            tuple(p) for p in zip(
                enumerated.left_positions[keep].tolist(),
                enumerated.right_positions[keep].tolist(),
            )
        }

    def test_with_runs_preserves_order_but_downgrades_bound_keys(self):
        runs = self.sample()  # order_key="lo"
        shrunk = runs.with_runs(runs.starts, runs.starts + 1)
        assert shrunk.order is runs.order
        assert len(shrunk) == 3  # one pair per left row
        # Arbitrary new bounds break bucket alignment: a bound-sorted key
        # must not survive the narrow (only "exact" spans stay sound).
        assert shrunk.order_key == "raw"
        exact = RunPairCandidates(
            runs.left_positions, runs.starts, runs.stops, runs.order,
            order_key="exact",
        )
        assert exact.with_runs(runs.starts, runs.starts + 1).order_key == "exact"

    def test_refine_never_resurrects_narrowed_pairs(self, machine):
        """A with_runs-narrowed candidate set stays a superset boundary for
        refinement: pairs removed by the narrow must not reappear, even
        when both right rows share one approximation bucket."""
        left = loaded(machine, np.array([5]), 3, "l")
        right = loaded(machine, np.array([7, 5]), 3, "r")
        theta = Theta(ThetaOp.WITHIN, 0)
        runs = theta_join_approx(
            machine.gpu, machine.new_timeline(), left, right, theta,
            strategy="sorted", emit="runs",
        )
        assert runs.pair_set() == {(0, 0), (0, 1)}
        narrowed = runs.with_runs(runs.starts, runs.starts + 1)
        kept = narrowed.pair_set()
        assert len(kept) == 1
        refined = theta_join_refine(
            machine.cpu, machine.new_timeline(), left, right, theta, narrowed
        )
        assert refined.pair_set() <= kept

    def test_validation(self):
        with pytest.raises(ExecutionError):
            RunPairCandidates(
                np.array([0]), np.array([0, 1]), np.array([1, 2]), np.array([0])
            )
        with pytest.raises(ExecutionError):  # stop beyond permutation
            RunPairCandidates(
                np.array([0]), np.array([0]), np.array([3]), np.array([5, 6])
            )
        with pytest.raises(ExecutionError):  # inverted run
            RunPairCandidates(
                np.array([0]), np.array([2]), np.array([1]), np.array([5, 6, 7])
            )


class TestEmitModes:
    def test_sorted_native_shape_is_runs(self, machine):
        left = loaded(machine, np.arange(100), 2, "l")
        right = loaded(machine, np.arange(50), 2, "r")
        theta = Theta(ThetaOp.LE)
        out = {
            emit: theta_join_approx(
                machine.gpu, machine.new_timeline(), left, right, theta,
                strategy="sorted", emit=emit,
            )
            for emit in ("auto", "runs", "pairs")
        }
        assert isinstance(out["auto"], RunPairCandidates)
        assert isinstance(out["runs"], RunPairCandidates)
        assert isinstance(out["pairs"], PairCandidates)
        assert out["auto"].set_equals(out["pairs"])
        assert out["runs"].set_equals(out["pairs"])

    def test_bruteforce_cannot_emit_runs(self, machine):
        left = loaded(machine, np.arange(40), 2, "l")
        right = loaded(machine, np.arange(40), 2, "r")
        pairs = theta_join_approx(
            machine.gpu, machine.new_timeline(), left, right,
            Theta(ThetaOp.LT), strategy="bruteforce",
        )
        assert isinstance(pairs, PairCandidates)
        with pytest.raises(ExecutionError):
            theta_join_approx(
                machine.gpu, machine.new_timeline(), left, right,
                Theta(ThetaOp.LT), strategy="bruteforce", emit="runs",
            )

    def test_unknown_emit_rejected(self, machine):
        left = loaded(machine, np.arange(10), 2, "l")
        with pytest.raises(ExecutionError):
            theta_join_approx(
                machine.gpu, machine.new_timeline(), left, left,
                Theta(ThetaOp.LT), emit="eager",
            )


# ----------------------------------------------------------------------
# All four producers agree, for every θ
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    residual_left=st.integers(0, 6),
    residual_right=st.integers(0, 6),
    op=st.sampled_from(list(ThetaOp)),
    delta=st.integers(0, 25),
    domain=st.sampled_from([4, 40, 4000]),
    n_left=st.integers(1, 90),
    n_right=st.integers(1, 70),
)
def test_property_four_producers_agree(
    seed, residual_left, residual_right, op, delta, domain, n_left, n_right
):
    """Brute force, sorted-materialized and sorted-runs emit the same
    candidate pair set; refining any of them (keep-mask narrowing or
    run-narrowing alike) lands exactly on ``theta_join_reference``."""
    machine = Machine.paper_testbed()
    rng = np.random.default_rng(seed)
    left_v = rng.integers(0, domain, n_left)
    right_v = rng.integers(0, domain, n_right)
    left = decompose_values(left_v, residual_bits=residual_left)
    right = decompose_values(right_v, residual_bits=residual_right)
    machine.gpu.load_column("l", left, None)
    machine.gpu.load_column("r", right, None)
    theta = Theta(op, delta=delta)

    candidates = {
        "bruteforce": theta_join_approx(
            machine.gpu, machine.new_timeline(), left, right, theta,
            strategy="bruteforce",
        ),
        "sorted-pairs": theta_join_approx(
            machine.gpu, machine.new_timeline(), left, right, theta,
            strategy="sorted", emit="pairs",
        ),
        "sorted-runs": theta_join_approx(
            machine.gpu, machine.new_timeline(), left, right, theta,
            strategy="sorted", emit="runs",
        ),
    }
    assert isinstance(candidates["sorted-runs"], RunPairCandidates)
    assert candidates["bruteforce"].set_equals(candidates["sorted-pairs"])
    assert candidates["bruteforce"].set_equals(candidates["sorted-runs"])
    assert candidates["sorted-runs"].set_equals(candidates["sorted-pairs"])

    truth = theta_join_reference(left_v, right_v, theta)
    for name, pairs in candidates.items():
        refined = theta_join_refine(
            machine.cpu, machine.new_timeline(), left, right, theta, pairs
        )
        assert refined.pair_set() == truth.pair_set(), name


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    residual=st.integers(0, 5),
    op=st.sampled_from(list(ThetaOp)),
    delta=st.integers(0, 20),
    chunk=st.sampled_from([1, 7, 64, 1 << 22]),
)
def test_property_chunked_fallback_matches_sorted_refine(
    seed, residual, op, delta, chunk
):
    """The materialize+mask fallback (for runs without a monotone order
    key) refines to the same set as the run-narrowing path, at any chunk
    granularity."""
    machine = Machine.paper_testbed()
    rng = np.random.default_rng(seed)
    left_v = rng.integers(0, 300, 60)
    right_v = rng.integers(0, 300, 45)
    left = decompose_values(left_v, residual_bits=residual)
    right = decompose_values(right_v, residual_bits=residual)
    machine.gpu.load_column("l", left, None)
    machine.gpu.load_column("r", right, None)
    theta = Theta(op, delta=delta)
    runs = theta_join_approx(
        machine.gpu, machine.new_timeline(), left, right, theta,
        strategy="sorted", emit="runs",
    )
    sorted_refined = theta_join_refine(
        machine.cpu, machine.new_timeline(), left, right, theta, runs
    )
    chunked = _refine_runs_chunked(left, right, theta, runs, chunk_elems=chunk)
    assert chunked.set_equals(sorted_refined)

    # A raw-order run set (no monotone key) dispatches to the fallback and
    # still refines correctly through the public entry point.
    raw = RunPairCandidates(
        runs.left_positions, runs.starts, runs.stops, runs.order,
        order_key="raw",
    )
    via_dispatch = theta_join_refine(
        machine.cpu, machine.new_timeline(), left, right, theta, raw
    )
    assert isinstance(via_dispatch, PairCandidates)
    assert via_dispatch.set_equals(sorted_refined)


# ----------------------------------------------------------------------
# Timeline identity: representation is unobservable in modeled seconds
# ----------------------------------------------------------------------
class TestTimelineIdentity:
    @pytest.fixture()
    def session(self):
        s = Session()
        rng = np.random.default_rng(33)
        s.create_table("orders", {"price": IntType()},
                       {"price": rng.integers(0, 5000, 700)})
        s.create_table("quotes", {"price": IntType()},
                       {"price": rng.integers(0, 5000, 250)})
        s.bwdecompose("orders", "price", residual_bits=4)
        s.bwdecompose("quotes", "price", residual_bits=4)
        return s

    @pytest.mark.parametrize("op,delta", [
        ("<", 0), (">=", 0), ("=", 0), ("within", 20),
    ])
    def test_runs_vs_materialized_byte_identical_pipeline(
        self, session, op, delta
    ):
        results = {
            emit: session.theta_join(
                "orders.price", "quotes.price", op, delta,
                strategy="sorted", emit=emit,
            )
            for emit in ("runs", "pairs")
        }
        a, b = results["runs"], results["pairs"]
        assert np.array_equal(a.column("left_pos"), b.column("left_pos"))
        assert np.array_equal(a.column("right_pos"), b.column("right_pos"))
        assert spans_of(a.timeline) == spans_of(b.timeline)

    def test_budget_evicted_run_join_charges_identically(self, session):
        """A zero view budget keeps every cache (code views *and* sort
        permutations) permanently cold; the run-length pipeline must charge
        exactly what the unbounded warm one does, and still be correct."""
        warm = session.theta_join(
            "orders.price", "quotes.price", "within", 20, emit="runs"
        )
        set_view_budget(0)
        cold = session.theta_join(
            "orders.price", "quotes.price", "within", 20, emit="runs"
        )
        assert np.array_equal(warm.column("left_pos"), cold.column("left_pos"))
        assert np.array_equal(warm.column("right_pos"), cold.column("right_pos"))
        assert spans_of(warm.timeline) == spans_of(cold.timeline)

    def test_repeated_join_reuses_permutations_and_charges_identically(
        self, session
    ):
        first = session.theta_join("orders.price", "quotes.price", "<", 0)
        col = session.catalog.decomposition_of("quotes", "price")
        perm = col._perm_approx_cache
        assert perm is not None  # memoized by the first join
        again = session.theta_join("orders.price", "quotes.price", "<", 0)
        assert col._perm_approx_cache is perm  # reused, not rebuilt
        assert spans_of(first.timeline) == spans_of(again.timeline)


# ----------------------------------------------------------------------
# The memoized sort permutations
# ----------------------------------------------------------------------
class TestSortPermutation:
    def test_sorts_each_key(self):
        values = np.random.default_rng(7).integers(0, 10_000, 500)
        col = decompose_values(values, residual_bits=5)
        lo = col.decomposition.approx_lower_bounds(col.approx_codes())
        exact = col.reconstruct()
        p_lo = col.sort_permutation("lo")
        p_exact = col.sort_permutation("exact")
        assert np.all(np.diff(lo[p_lo]) >= 0)
        assert np.all(np.diff(exact[p_exact]) >= 0)
        for perm in (p_lo, p_exact):
            assert perm.flags.writeable is False
            assert sorted(perm.tolist()) == list(range(len(values)))

    def test_lo_and_hi_share_one_permutation(self):
        col = decompose_values(np.arange(100)[::-1].copy(), residual_bits=3)
        assert col.sort_permutation("lo") is col.sort_permutation("hi")

    def test_memoized_and_rebuilt_after_eviction(self):
        values = np.random.default_rng(8).integers(0, 1 << 16, 400)
        col = decompose_values(values, residual_bits=4)
        first = col.sort_permutation("exact")
        assert col.sort_permutation("exact") is first
        set_view_budget(0)  # evicts views and permutations alike
        assert col._perm_exact_cache is None
        set_view_budget(None)
        rebuilt = col.sort_permutation("exact")
        assert rebuilt is not first
        assert np.array_equal(rebuilt, first)

    def test_unknown_bound_rejected(self):
        col = decompose_values(np.arange(10), residual_bits=2)
        with pytest.raises(ValueError):
            col.sort_permutation("median")
