"""Tests for the translucent join (Algorithm 1) — DESIGN.md invariant 3."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.translucent import (
    invisible_join,
    translucent_join,
    translucent_join_reference,
)
from repro.errors import RefinementError


class TestInvisibleJoin:
    def test_positional_lookup(self):
        pos = invisible_join(100, 10, np.array([103, 101, 109]))
        assert np.array_equal(pos, [3, 1, 9])

    def test_out_of_range(self):
        with pytest.raises(RefinementError):
            invisible_join(100, 10, np.array([110]))
        with pytest.raises(RefinementError):
            invisible_join(100, 10, np.array([99]))

    def test_empty(self):
        assert invisible_join(0, 5, np.array([], dtype=np.int64)).size == 0


class TestReferenceAlgorithm:
    def test_paper_figure5_example(self):
        """Fig 5's shape: an unsorted approximation id list joined with a
        subset that shares its permutation."""
        a_ids = np.array([13, 0, 11, 9, 3, 1, 5, 7])
        r_ids = np.array([0, 9, 1, 5, 7])  # same relative order as in A
        pos = translucent_join_reference(a_ids, r_ids)
        assert np.array_equal(pos, [1, 3, 5, 6, 7])
        assert np.array_equal(a_ids[pos], r_ids)

    def test_identity_join(self):
        ids = np.array([5, 3, 8])
        assert np.array_equal(translucent_join_reference(ids, ids), [0, 1, 2])

    def test_empty_subset(self):
        assert translucent_join_reference(np.array([1, 2]), np.array([], dtype=np.int64)).size == 0

    def test_not_a_subset_raises(self):
        with pytest.raises(RefinementError):
            translucent_join_reference(np.array([1, 2, 3]), np.array([4]))

    def test_wrong_permutation_raises(self):
        # 3 appears before 1 in A but after in R → precondition 3 violated
        with pytest.raises(RefinementError):
            translucent_join_reference(np.array([3, 1]), np.array([1, 3]))


class TestVectorizedJoin:
    def test_dense_sorted_uses_invisible_path(self):
        a_ids = np.arange(50, 60)
        pos = translucent_join(a_ids, np.array([53, 51, 59]))
        assert np.array_equal(pos, [3, 1, 9])

    def test_scrambled_superset(self):
        a_ids = np.array([13, 0, 11, 9, 3, 1, 5, 7])
        r_ids = np.array([0, 9, 1, 5, 7])
        pos = translucent_join(a_ids, r_ids)
        assert np.array_equal(a_ids[pos], r_ids)

    def test_empty_refined(self):
        assert translucent_join(np.array([3, 1]), np.array([], dtype=np.int64)).size == 0

    def test_empty_approximation_raises(self):
        with pytest.raises(RefinementError):
            translucent_join(np.array([], dtype=np.int64), np.array([1]))

    def test_subset_violation_raises(self):
        with pytest.raises(RefinementError):
            translucent_join(np.array([5, 2, 9]), np.array([2, 7]))

    def test_permutation_violation_raises(self):
        with pytest.raises(RefinementError):
            translucent_join(np.array([5, 2, 9]), np.array([9, 2]))

    def test_single_element(self):
        assert np.array_equal(translucent_join(np.array([42]), np.array([42])), [0])


@settings(max_examples=100, deadline=None)
@given(
    ids=st.lists(st.integers(0, 10_000), min_size=1, max_size=120, unique=True),
    seed=st.integers(0, 2**31 - 1),
)
def test_property_vectorized_matches_reference(ids, seed):
    """Vectorized ≡ Algorithm 1 on arbitrary permutations and subsets."""
    rng = np.random.default_rng(seed)
    a_ids = np.array(ids, dtype=np.int64)
    rng.shuffle(a_ids)
    keep = rng.random(len(a_ids)) < 0.6
    r_ids = a_ids[keep]
    expected = translucent_join_reference(a_ids, r_ids)
    got = translucent_join(a_ids, r_ids)
    assert np.array_equal(got, expected)
    assert np.array_equal(a_ids[got], r_ids)


@settings(max_examples=50, deadline=None)
@given(
    start=st.integers(0, 1000),
    n=st.integers(1, 100),
    seed=st.integers(0, 2**31 - 1),
)
def test_property_dense_path_equals_reference(start, n, seed):
    """The invisible fast path agrees with Algorithm 1 on dense inputs."""
    rng = np.random.default_rng(seed)
    a_ids = np.arange(start, start + n, dtype=np.int64)
    keep = rng.random(n) < 0.5
    r_ids = a_ids[keep]
    assert np.array_equal(
        translucent_join(a_ids, r_ids), translucent_join_reference(a_ids, r_ids)
    )


@settings(max_examples=60, deadline=None)
@given(
    ids=st.lists(st.integers(0, 5000), min_size=2, max_size=60, unique=True),
    seed=st.integers(0, 2**31 - 1),
)
def test_property_join_complexity_preserving(ids, seed):
    """Join output positions are strictly increasing — one forward pass."""
    rng = np.random.default_rng(seed)
    a_ids = np.array(ids, dtype=np.int64)
    rng.shuffle(a_ids)
    r_ids = a_ids[rng.random(len(a_ids)) < 0.5]
    pos = translucent_join(a_ids, r_ids)
    if pos.size > 1:
        assert np.all(np.diff(pos) > 0)
