"""Tests for error-bound interval arithmetic — DESIGN.md invariant 4."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import Interval, IntervalColumn
from repro.errors import ExecutionError


def column(pairs):
    lo = np.array([p[0] for p in pairs], dtype=np.int64)
    hi = np.array([p[1] for p in pairs], dtype=np.int64)
    return IntervalColumn.from_bounds(lo, hi)


class TestInterval:
    def test_basic_properties(self):
        iv = Interval(2.0, 6.0)
        assert iv.width == 4.0
        assert iv.midpoint == 4.0
        assert not iv.is_exact
        assert iv.contains(2.0) and iv.contains(6.0) and not iv.contains(6.1)

    def test_exact_interval(self):
        assert Interval(3.0, 3.0).is_exact

    def test_malformed_rejected(self):
        with pytest.raises(ExecutionError):
            Interval(5.0, 4.0)


class TestIntervalColumnConstruction:
    def test_exact_constructor(self):
        c = IntervalColumn.exact(np.array([1, 2, 3]))
        assert c.is_exact and c.refinable
        assert c.max_error == 0

    def test_from_bounds_detects_exactness(self):
        assert column([(1, 1), (2, 2)]).refinable
        assert not column([(1, 2)]).refinable

    def test_misaligned_rejected(self):
        with pytest.raises(ExecutionError):
            IntervalColumn(np.array([1, 2]), np.array([3]), refinable=False)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ExecutionError):
            column([(5, 3)])

    def test_take(self):
        c = column([(0, 1), (2, 3), (4, 5)]).take(np.array([2, 0]))
        assert np.array_equal(c.lo, [4, 0])
        assert np.array_equal(c.hi, [5, 1])

    def test_len_and_nbytes(self):
        c = column([(0, 1), (2, 3)])
        assert len(c) == 2
        assert c.nbytes == 32


class TestArithmetic:
    def test_add(self):
        c = column([(1, 2)]).add(column([(10, 20)]))
        assert (c.lo[0], c.hi[0]) == (11, 22)

    def test_sub(self):
        c = column([(1, 2)]).sub(column([(10, 20)]))
        assert (c.lo[0], c.hi[0]) == (-19, -8)

    def test_neg(self):
        c = column([(1, 2)]).neg()
        assert (c.lo[0], c.hi[0]) == (-2, -1)

    def test_mul_mixed_signs(self):
        c = column([(-2, 3)]).mul(column([(-5, 4)]))
        assert (c.lo[0], c.hi[0]) == (-15, 12)

    def test_mul_destroys_refinability(self):
        """§IV-G destructive distributivity: inexact × anything ⇒ not refinable."""
        inexact = column([(1, 2)])
        exact = IntervalColumn.exact(np.array([3]))
        assert not inexact.mul(exact).refinable
        assert not inexact.mul(inexact).refinable
        assert exact.mul(exact).refinable

    def test_add_refinability(self):
        """Exact + exact stays refinable; inexact inputs are conservatively
        marked non-refinable (our engine recomputes on the host)."""
        assert column([(1, 2)]).add(column([(3, 9)])).refinable is False
        a = IntervalColumn.exact(np.array([1]))
        assert a.add(a).refinable

    def test_floordiv(self):
        c = column([(10, 20)]).floordiv(column([(2, 4)]))
        assert (c.lo[0], c.hi[0]) == (2, 10)

    def test_floordiv_zero_rejected(self):
        with pytest.raises(ExecutionError):
            column([(1, 2)]).floordiv(column([(-1, 1)]))

    def test_sqrt_floor_brackets(self):
        c = column([(16, 26)]).sqrt_floor()
        assert c.lo[0] <= 4 and c.hi[0] >= 5

    def test_sqrt_negative_rejected(self):
        with pytest.raises(ExecutionError):
            column([(-4, 4)]).sqrt_floor()

    def test_power_odd(self):
        c = column([(-2, 3)]).power(3)
        assert (c.lo[0], c.hi[0]) == (-8, 27)

    def test_power_even_crossing_zero(self):
        c = column([(-2, 3)]).power(2)
        assert (c.lo[0], c.hi[0]) == (0, 9)

    def test_power_negative_exponent_rejected(self):
        with pytest.raises(ExecutionError):
            column([(1, 2)]).power(-1)

    def test_scalar_ops(self):
        c = column([(1, 2)])
        assert (c.add_scalar(5).lo[0], c.add_scalar(5).hi[0]) == (6, 7)
        assert (c.mul_scalar(3).lo[0], c.mul_scalar(3).hi[0]) == (3, 6)
        neg = c.mul_scalar(-3)
        assert (neg.lo[0], neg.hi[0]) == (-6, -3)


class TestAggregateBounds:
    def test_sum_interval(self):
        iv = column([(1, 2), (10, 20)]).sum_interval()
        assert (iv.lo, iv.hi) == (11.0, 22.0)

    def test_sum_empty(self):
        iv = column([]).sum_interval()
        assert iv.is_exact and iv.lo == 0

    def test_min_max_mean(self):
        c = column([(1, 4), (2, 3)])
        assert (c.min_interval().lo, c.min_interval().hi) == (1.0, 3.0)
        assert (c.max_interval().lo, c.max_interval().hi) == (2.0, 4.0)
        assert (c.mean_interval().lo, c.mean_interval().hi) == (1.5, 3.5)

    def test_empty_min_rejected(self):
        with pytest.raises(ExecutionError):
            column([]).min_interval()


# ----------------------------------------------------------------------
# Property: soundness — op(concrete) ∈ op(intervals)
# ----------------------------------------------------------------------
_bound_pairs = st.tuples(st.integers(-200, 200), st.integers(0, 50)).map(
    lambda t: (t[0], t[0] + t[1])
)


@settings(max_examples=120, deadline=None)
@given(
    a=_bound_pairs, b=_bound_pairs,
    fa=st.floats(0, 1), fb=st.floats(0, 1),
    op=st.sampled_from(["add", "sub", "mul"]),
)
def test_property_arithmetic_soundness(a, b, fa, fb, op):
    ca, cb = column([a]), column([b])
    va = round(a[0] + fa * (a[1] - a[0]))
    vb = round(b[0] + fb * (b[1] - b[0]))
    out = getattr(ca, op)(cb)
    concrete = {"add": va + vb, "sub": va - vb, "mul": va * vb}[op]
    assert out.lo[0] <= concrete <= out.hi[0]


@settings(max_examples=80, deadline=None)
@given(a=_bound_pairs, d=st.integers(1, 40), fa=st.floats(0, 1))
def test_property_division_soundness(a, d, fa):
    ca = column([a])
    cd = IntervalColumn.exact(np.array([d]))
    va = round(a[0] + fa * (a[1] - a[0]))
    out = ca.floordiv(cd)
    assert out.lo[0] <= va // d <= out.hi[0]


@settings(max_examples=60, deadline=None)
@given(
    pairs=st.lists(_bound_pairs, min_size=1, max_size=30),
    seed=st.integers(0, 2**31 - 1),
)
def test_property_sum_bounds_contain_concrete_sum(pairs, seed):
    rng = np.random.default_rng(seed)
    c = column(pairs)
    concrete = np.array(
        [rng.integers(lo, hi + 1) for lo, hi in zip(c.lo, c.hi)], dtype=np.int64
    )
    iv = c.sum_interval()
    assert iv.lo <= float(concrete.sum()) <= iv.hi
