"""Tests for A&R grouping (§IV-E) and grouped aggregation helpers (§IV-F)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregates import (
    grouped_avg,
    grouped_count,
    grouped_count_interval,
    grouped_max,
    grouped_min,
    grouped_sum,
    grouped_sum_interval,
)
from repro.core.candidates import Approximation
from repro.core.grouping import (
    GroupAssignment,
    combine_keys,
    group_approx,
    group_refine,
)
from repro.core.intervals import IntervalColumn
from repro.device.machine import Machine
from repro.errors import ExecutionError
from repro.storage.decompose import decompose_values


@pytest.fixture()
def machine():
    return Machine.paper_testbed()


def load(machine, values, residual_bits, label):
    col = decompose_values(np.asarray(values), residual_bits=residual_bits)
    machine.gpu.load_column(label, col, None)
    return col


def all_rows(n):
    return Approximation(ids=np.arange(n, dtype=np.int64))


def classic_groups(*key_columns):
    """Ground truth: dense group ids over exact composite keys."""
    stacked = np.stack(key_columns, axis=1)
    _, gids = np.unique(stacked, axis=0, return_inverse=True)
    return gids


class TestCombineKeys:
    def test_two_columns(self):
        g0 = np.array([0, 0, 1, 1])
        c1 = np.array([5, 7, 5, 5])
        gids, n = combine_keys(g0, c1)
        assert n == 3
        assert gids[2] == gids[3] and gids[0] != gids[1]

    def test_empty(self):
        gids, n = combine_keys(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert n == 0 and gids.size == 0

    def test_overflow_guard(self):
        with pytest.raises(ExecutionError):
            combine_keys(np.array([1 << 40]), np.array([1 << 40]))


class TestGroupApprox:
    def test_exact_when_fully_resident(self, machine):
        keys = np.array([3, 1, 3, 2, 1, 3])
        col = load(machine, keys, 0, "k")
        tl = machine.new_timeline()
        out = group_approx(machine.gpu, tl, all_rows(6), [("k", col)])
        assert out.exact
        assert out.n_groups == 3
        assert np.array_equal(out.gids, classic_groups(keys))

    def test_approximate_grouping_is_coarser(self, machine):
        """Approximate groups merge values sharing a bucket — refinement
        splits them back out."""
        keys = np.array([0, 1, 2, 3, 4, 5, 6, 7])
        col = load(machine, keys, 2, "k")  # buckets of 4
        tl = machine.new_timeline()
        out = group_approx(machine.gpu, tl, all_rows(8), [("k", col)])
        assert not out.exact
        assert out.n_groups == 2  # two buckets
        refined = group_refine(
            machine.cpu, tl, out, [("k", col)], all_rows(8)
        )
        assert refined.exact
        assert refined.n_groups == 8

    def test_multi_column_grouping(self, machine):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 3, 500)
        b = rng.integers(0, 2, 500)
        col_a = load(machine, a, 0, "a")
        col_b = load(machine, b, 0, "b")
        tl = machine.new_timeline()
        out = group_approx(machine.gpu, tl, all_rows(500), [("a", col_a), ("b", col_b)])
        truth = classic_groups(a, b)
        assert out.n_groups == len(np.unique(truth))
        # same partition (up to renumbering)
        for g in range(out.n_groups):
            members = truth[out.gids == g]
            assert len(np.unique(members)) == 1

    def test_grouping_over_candidate_subset(self, machine):
        keys = np.array([9, 9, 5, 5, 7])
        col = load(machine, keys, 0, "k")
        tl = machine.new_timeline()
        cand = Approximation(ids=np.array([4, 2, 0]))
        out = group_approx(machine.gpu, tl, cand, [("k", col)])
        assert out.n_groups == 3

    def test_requires_columns(self, machine):
        with pytest.raises(ExecutionError):
            group_approx(machine.gpu, machine.new_timeline(), all_rows(3), [])

    def test_group_refine_noop_when_exact(self, machine):
        keys = np.array([1, 2, 1])
        col = load(machine, keys, 0, "k")
        tl = machine.new_timeline()
        out = group_approx(machine.gpu, tl, all_rows(3), [("k", col)])
        assert group_refine(machine.cpu, tl, out, [("k", col)], all_rows(3)) is out


class TestGroupRefineEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        residual_bits=st.integers(0, 6),
        cardinality=st.integers(1, 40),
    )
    def test_property_refined_grouping_matches_classic(
        self, seed, residual_bits, cardinality
    ):
        machine = Machine.paper_testbed()
        rng = np.random.default_rng(seed)
        keys = rng.integers(0, cardinality, 300)
        col = decompose_values(keys, residual_bits=residual_bits)
        machine.gpu.load_column("k", col, None)
        tl = machine.new_timeline()
        approx = group_approx(machine.gpu, tl, all_rows(300), [("k", col)])
        refined = group_refine(machine.cpu, tl, approx, [("k", col)], all_rows(300))
        truth = classic_groups(keys)
        assert refined.n_groups == len(np.unique(truth))
        for g in range(refined.n_groups):
            assert len(np.unique(truth[refined.gids == g])) == 1


class TestGroupAssignmentValidation:
    def test_gid_range_checked(self):
        with pytest.raises(ExecutionError):
            GroupAssignment(gids=np.array([0, 3]), n_groups=2, exact=True)


class TestGroupedAggregates:
    def test_sum_count_min_max_avg(self):
        values = np.array([1, 2, 3, 4, 5])
        gids = np.array([0, 1, 0, 1, 0])
        assert np.array_equal(grouped_sum(values, gids, 2), [9, 6])
        assert np.array_equal(grouped_count(gids, 2), [3, 2])
        assert np.array_equal(grouped_min(values, gids, 2), [1, 2])
        assert np.array_equal(grouped_max(values, gids, 2), [5, 4])
        assert np.allclose(grouped_avg(values, gids, 2), [3.0, 3.0])

    def test_empty_group_in_avg_rejected(self):
        with pytest.raises(ExecutionError):
            grouped_avg(np.array([1]), np.array([0]), 2)

    def test_misaligned_rejected(self):
        with pytest.raises(ExecutionError):
            grouped_sum(np.array([1, 2]), np.array([0]), 1)

    def test_gid_out_of_range_rejected(self):
        with pytest.raises(ExecutionError):
            grouped_sum(np.array([1]), np.array([5]), 2)

    def test_interval_sums_bracket_exact(self):
        lo = np.array([1, 10, 100])
        hi = np.array([3, 12, 104])
        gids = np.array([0, 0, 1])
        bounds = grouped_sum_interval(IntervalColumn.from_bounds(lo, hi), gids, 2)
        assert bounds[0].lo == 11 and bounds[0].hi == 15
        assert bounds[1].lo == 100 and bounds[1].hi == 104

    def test_count_intervals(self):
        gids = np.array([0, 0, 1, 1, 1])
        certain = np.array([True, False, True, True, False])
        bounds = grouped_count_interval(certain, gids, 2)
        assert (bounds[0].lo, bounds[0].hi) == (1.0, 2.0)
        assert (bounds[1].lo, bounds[1].hi) == (2.0, 3.0)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), n_groups=st.integers(1, 20))
    def test_property_grouped_sums_match_python(self, seed, n_groups):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 200))
        values = rng.integers(-50, 50, n)
        gids = rng.integers(0, n_groups, n)
        got = grouped_sum(values, gids, n_groups)
        for g in range(n_groups):
            assert got[g] == int(values[gids == g].sum())
