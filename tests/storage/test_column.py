"""Tests for logical column types (int, decimal, date, dictionary)."""

from datetime import date

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage.column import (
    DateType,
    DecimalType,
    DictionaryType,
    IntType,
    OrderedDictionary,
)


class TestIntType:
    def test_encode_passthrough(self):
        t = IntType()
        assert np.array_equal(t.encode([1, -2, 3]), [1, -2, 3])
        assert t.storage_bits == 32
        assert t.name == "int32"


class TestDecimalType:
    def test_scaled_int_roundtrip(self):
        t = DecimalType(8, 5)
        encoded = t.encode([2.68288, -12.62427])
        assert encoded.dtype == np.int64
        assert np.array_equal(encoded, [268288, -1262427])
        assert np.allclose(t.decode(encoded), [2.68288, -12.62427])

    def test_encode_one_literal(self):
        assert DecimalType(8, 5).encode_one(50.4222) == 5042220

    def test_rounding_to_nearest(self):
        assert DecimalType(4, 2).encode_one(1.004) == 100
        assert DecimalType(4, 2).encode_one(1.006) == 101

    def test_precision_overflow_rejected(self):
        with pytest.raises(StorageError):
            DecimalType(4, 2).encode([100.0])

    def test_invalid_precision_scale(self):
        with pytest.raises(StorageError):
            DecimalType(0, 0)
        with pytest.raises(StorageError):
            DecimalType(4, 5)

    def test_name(self):
        assert DecimalType(7, 5).name == "decimal(7,5)"


class TestDateType:
    def test_epoch_is_zero(self):
        assert DateType.encode_one("1970-01-01") == 0

    def test_roundtrip(self):
        t = DateType()
        days = t.encode(["1995-03-15", "1998-12-01"])
        assert t.decode(days) == [date(1995, 3, 15), date(1998, 12, 1)]

    def test_accepts_date_objects_and_ints(self):
        assert DateType.encode_one(date(1970, 1, 2)) == 1
        assert DateType.encode_one(42) == 42

    def test_rejects_garbage(self):
        with pytest.raises(StorageError):
            DateType.encode_one(3.14)

    def test_tpch_shipdate_width(self):
        """The paper notes l_shipdate spans 2526 values, i.e. 12 bits."""
        lo = DateType.encode_one("1992-01-02")
        hi = DateType.encode_one("1998-12-01")
        assert (hi - lo).bit_length() == 12


class TestOrderedDictionary:
    def test_codes_are_sorted_positions(self):
        d = OrderedDictionary(["banana", "apple", "cherry", "apple"])
        assert d.values == ["apple", "banana", "cherry"]
        assert d.code_of("banana") == 1

    def test_encode_decode(self):
        d = OrderedDictionary(["x", "y"])
        codes = d.encode(["y", "x", "y"])
        assert np.array_equal(codes, [1, 0, 1])
        assert d.decode(codes) == ["y", "x", "y"]

    def test_missing_value(self):
        with pytest.raises(KeyError):
            OrderedDictionary(["a"]).code_of("b")

    def test_empty_rejected(self):
        with pytest.raises(StorageError):
            OrderedDictionary([])

    def test_prefix_range_contiguous(self):
        """Prefix predicates become code ranges (the TPC-H Q14 rewrite)."""
        d = OrderedDictionary(
            ["ECONOMY BRASS", "PROMO BRUSHED", "PROMO PLATED", "STANDARD TIN"]
        )
        lo, hi = d.prefix_range("PROMO")
        assert (lo, hi) == (1, 2)
        assert all(v.startswith("PROMO") for v in d.values[lo : hi + 1])

    def test_prefix_range_empty(self):
        lo, hi = OrderedDictionary(["abc"]).prefix_range("zz")
        assert lo > hi

    def test_prefix_range_all(self):
        lo, hi = OrderedDictionary(["aa", "ab"]).prefix_range("a")
        assert (lo, hi) == (0, 1)


class TestDictionaryType:
    def test_encode_through_type(self):
        d = OrderedDictionary(["n", "p"])
        t = DictionaryType(dictionary=d)
        assert np.array_equal(t.encode(["p", "n"]), [1, 0])
        assert t.decode(np.array([0])) == ["n"]
        assert t.name == "dictionary[2]"

    def test_requires_dictionary(self):
        with pytest.raises(StorageError):
            DictionaryType()
