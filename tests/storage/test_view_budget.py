"""The optional LRU byte budget over decoded code views.

Default is unbounded (the PR-1 behavior).  Under a budget, least-recently-
used views are evicted, columns stay fully correct (the packed streams are
authoritative), and modeled Timeline charges never change — the code-cache
invariant extends to eviction.
"""

import numpy as np
import pytest

from repro.device.gpu import SimulatedGPU
from repro.device.model import DeviceSpec
from repro.device.timeline import Timeline
from repro.storage.decompose import (
    VIEW_SEGMENT_ROWS,
    _PartialView,
    decompose_values,
    set_view_budget,
    view_budget,
    view_cache_bytes,
    view_segment_rows,
)


@pytest.fixture(autouse=True)
def unbounded_after():
    """Every test leaves the process-wide knobs back at their defaults."""
    yield
    set_view_budget(None, segment_rows=VIEW_SEGMENT_ROWS)


def small_gpu() -> SimulatedGPU:
    spec = DeviceSpec(
        name="tiny-gpu", kind="gpu", memory_capacity=10**7,
        seq_bandwidth=150e9, random_bandwidth=20e9, launch_overhead=5e-6,
    )
    return SimulatedGPU(spec, processing_reserve_fraction=0.1)


class TestBudgetKnob:
    def test_default_is_unbounded(self):
        assert view_budget() is None
        col = decompose_values(np.arange(1000), residual_bits=4)
        col.approx_codes_i64()
        assert col._approx_cache is not None
        assert col._approx_i64_cache is not None

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            set_view_budget(-1)

    def test_zero_budget_keeps_columns_cold(self):
        set_view_budget(0)
        values = np.random.default_rng(0).integers(0, 10_000, 500)
        col = decompose_values(values, residual_bits=4)
        # seeding was evicted immediately; every accessor still answers
        assert col._approx_cache is None
        assert col._residual_cache is None
        codes = col.approx_codes()
        assert col._approx_cache is None  # dropped right after materializing
        assert np.array_equal(col.reconstruct(), values)
        assert codes.flags.writeable is False

    def test_eviction_is_lru(self):
        set_view_budget(None)
        cols = [
            decompose_values(np.arange(1000) + i, residual_bits=0)
            for i in range(3)
        ]
        per_view = cols[0].approx_codes().nbytes
        # Budget fits two of the three seeded views: the oldest (col 0) is
        # evicted the moment the cap lands.
        set_view_budget(2 * per_view)
        assert cols[0]._approx_cache is None
        assert cols[1]._approx_cache is not None
        assert cols[2]._approx_cache is not None
        # Touch col 1 (now most recent), then rematerialize col 0: the LRU
        # victim must be col 2, not the freshly-touched col 1.
        cols[1].approx_codes()
        cols[0].approx_codes()
        assert cols[2]._approx_cache is None
        assert cols[1]._approx_cache is not None
        assert cols[0]._approx_cache is not None

    def test_evicted_views_rebuild_identically(self):
        values = np.random.default_rng(3).integers(0, 1 << 16, 400)
        col = decompose_values(values, residual_bits=5)
        before_codes = col.approx_codes().copy()
        before_res = col.residuals().copy()
        set_view_budget(0)  # evict everything
        assert col._approx_cache is None and col._residual_cache is None
        set_view_budget(None)
        assert np.array_equal(col.approx_codes(), before_codes)
        assert np.array_equal(col.residuals(), before_res)
        assert np.array_equal(col.reconstruct(), values)

    def test_shrinking_budget_evicts_immediately(self):
        set_view_budget(None)
        col = decompose_values(np.arange(2000), residual_bits=3)
        col.approx_codes()
        assert view_cache_bytes() > 0
        set_view_budget(0)
        assert col._approx_cache is None

    def test_accounting_tracks_usage(self):
        set_view_budget(None)
        base = view_cache_bytes()
        col = decompose_values(np.arange(512), residual_bits=0)
        view = col.approx_codes()
        assert view_cache_bytes() >= base + view.nbytes


class TestSegmentGranularEviction:
    """PR 5: budget pressure drops view *segments*, not whole columns."""

    def test_default_segment_size(self):
        assert view_segment_rows() == VIEW_SEGMENT_ROWS

    def test_segment_rows_must_be_multiple_of_64(self):
        with pytest.raises(ValueError):
            set_view_budget(None, segment_rows=100)
        with pytest.raises(ValueError):
            set_view_budget(None, segment_rows=0)

    def test_partial_eviction_keeps_most_segments(self):
        set_view_budget(None, segment_rows=256)
        cols = [
            decompose_values(np.arange(1024) + i, residual_bits=0)
            for i in range(3)
        ]
        per_view = cols[0].approx_codes().nbytes  # 4 segments of 2 KiB
        # Room for 2.5 views: only half of the oldest view must go.
        set_view_budget(int(2.5 * per_view))
        assert isinstance(cols[0]._approx_cache, _PartialView)
        assert cols[0]._approx_cache.resident == 2
        assert isinstance(cols[1]._approx_cache, np.ndarray)
        assert isinstance(cols[2]._approx_cache, np.ndarray)

    def test_partially_evicted_view_rebuilds_identically(self):
        set_view_budget(None, segment_rows=128)
        values = np.random.default_rng(5).integers(0, 1 << 20, 1000)
        col = decompose_values(values, residual_bits=7)
        codes_before = col.approx_codes().copy()
        res_before = col.residuals().copy()
        per_view = codes_before.nbytes
        set_view_budget(per_view // 2)  # halve: segments of both views go
        set_view_budget(None)
        assert np.array_equal(col.approx_codes(), codes_before)
        assert np.array_equal(col.residuals(), res_before)
        assert np.array_equal(col.reconstruct(), values)
        # Once reassembled the views are plain full arrays again.
        assert isinstance(col._approx_cache, np.ndarray)

    def test_whole_view_drops_without_conversion_when_all_must_go(self):
        set_view_budget(None, segment_rows=128)
        col = decompose_values(np.arange(1024), residual_bits=0)
        assert col._approx_cache is not None
        set_view_budget(0)
        # Budget 0 cannot keep any segment: the attr goes straight to None.
        assert col._approx_cache is None

    def test_accounting_matches_resident_segments(self):
        set_view_budget(None, segment_rows=256)
        base = view_cache_bytes()
        col = decompose_values(np.arange(1024), residual_bits=0)
        view = col.approx_codes()
        assert view_cache_bytes() >= base + view.nbytes
        set_view_budget(view_cache_bytes() - 256 * 8)  # shave one segment
        assert isinstance(col._approx_cache, _PartialView)
        set_view_budget(None)
        col.approx_codes()

    def test_changing_segment_rows_flushes(self):
        set_view_budget(None, segment_rows=256)
        col = decompose_values(np.arange(512), residual_bits=0)
        col.approx_codes()
        assert view_cache_bytes() > 0
        set_view_budget(None, segment_rows=512)
        assert view_cache_bytes() == 0
        assert col._approx_cache is None

    def test_i64_view_reassembles_from_codes(self):
        set_view_budget(None, segment_rows=64)
        values = np.random.default_rng(9).integers(0, 1 << 12, 500)
        col = decompose_values(values, residual_bits=3)
        i64_before = col.approx_codes_i64().copy()
        # Evict a sliver so the i64 view goes partial, then reassemble.
        set_view_budget(view_cache_bytes() - 64 * 8)
        set_view_budget(None)
        after = col.approx_codes_i64()
        assert after.dtype == np.int64
        assert np.array_equal(after, i64_before)

    def test_segmented_eviction_charges_identically(self):
        """Partial eviction is wall-clock only: a column squeezed through
        a tiny segmented budget charges exactly like an unbounded one."""
        values = np.random.default_rng(2).integers(0, 100_000, 4000)
        spans = []
        for constrained in (False, True):
            set_view_budget(None, segment_rows=128)
            gpu = small_gpu()
            col = decompose_values(values, residual_bits=4)
            gpu.load_column("c", col, None)
            if constrained:
                set_view_budget(5 * 128 * 8)  # a handful of segments
            t = Timeline()
            gpu.scan_code_range(col, 10, 4000, t)
            gpu.scan_code_range(col, 10, 4000, t)
            spans.append(t.span_tuples())
        assert spans[0] == spans[1]


class TestBudgetTimelineInvariance:
    def test_budgeted_scan_charges_identically(self):
        """A budget changes only wall-clock behaviour: a permanently-cold
        column must charge exactly what an unbounded warm one does."""
        values = np.random.default_rng(1).integers(0, 100_000, 4000)
        spans = []
        for budget in (None, 0):
            set_view_budget(budget)
            gpu = small_gpu()
            col = decompose_values(values, residual_bits=4)
            gpu.load_column("c", col, None)
            t = Timeline()
            gpu.scan_code_range(col, 10, 4000, t)
            gpu.scan_code_range(col, 10, 4000, t)
            spans.append([
                (s.device, s.kind, s.op, s.nbytes, s.seconds, s.phase)
                for s in t._spans
            ])
            if budget == 0:
                assert col._approx_cache is None  # genuinely stayed cold
        assert spans[0] == spans[1]
