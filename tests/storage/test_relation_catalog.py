"""Tests for relations, schemas and the catalog / bwdecompose registry."""

import numpy as np
import pytest

from repro.errors import DecompositionError, StorageError
from repro.storage.catalog import Catalog
from repro.storage.column import DecimalType, IntType
from repro.storage.relation import Relation, Schema, int_schema


def make_relation(n=100, name="r"):
    rng = np.random.default_rng(1)
    return Relation.create(
        name,
        int_schema("a", "b"),
        {"a": rng.integers(0, 1000, n), "b": rng.integers(0, 50, n)},
    )


class TestSchema:
    def test_ordered_names(self):
        s = Schema.of([("x", IntType()), ("y", IntType())])
        assert s.names == ["x", "y"]
        assert "x" in s and "z" not in s

    def test_duplicate_names_rejected(self):
        with pytest.raises(StorageError):
            Schema.of([("x", IntType()), ("x", IntType())])

    def test_type_of(self):
        s = Schema.of({"d": DecimalType(8, 5)})
        assert s.type_of("d").name == "decimal(8,5)"
        with pytest.raises(StorageError):
            s.type_of("nope")


class TestRelation:
    def test_create_encodes_through_types(self):
        rel = Relation.create(
            "t",
            Schema.of({"price": DecimalType(8, 2)}),
            {"price": [19.99, 5.00]},
        )
        assert np.array_equal(rel.values("price"), [1999, 500])

    def test_integer_arrays_pass_through(self):
        rel = Relation.create(
            "t", Schema.of({"d": DecimalType(8, 2)}), {"d": np.array([123, 456])}
        )
        assert np.array_equal(rel.values("d"), [123, 456])

    def test_missing_and_extra_columns(self):
        with pytest.raises(StorageError):
            Relation.create("t", int_schema("a", "b"), {"a": [1]})
        with pytest.raises(StorageError):
            Relation.create("t", int_schema("a"), {"a": [1], "z": [2]})

    def test_misaligned_columns(self):
        with pytest.raises(StorageError):
            Relation.create("t", int_schema("a", "b"), {"a": [1, 2], "b": [1]})

    def test_len_columns_nbytes(self):
        rel = make_relation(64)
        assert len(rel) == 64
        assert rel.column_names == ["a", "b"]
        assert rel.nbytes == 2 * 64 * 8
        with pytest.raises(StorageError):
            rel.column("zzz")


class TestCatalog:
    def test_register_and_lookup(self):
        cat = Catalog()
        rel = make_relation()
        cat.register(rel)
        assert cat.table("r") is rel
        assert "r" in cat
        assert list(cat.tables()) == [rel]

    def test_duplicate_and_missing(self):
        cat = Catalog()
        cat.register(make_relation())
        with pytest.raises(StorageError):
            cat.register(make_relation())
        with pytest.raises(StorageError):
            cat.table("missing")

    def test_drop_removes_decompositions(self):
        cat = Catalog()
        cat.register(make_relation())
        cat.bwdecompose("r", "a", 24)
        cat.drop("r")
        assert "r" not in cat
        assert cat.decomposition_of("r", "a") is None
        with pytest.raises(StorageError):
            cat.drop("r")

    def test_bwdecompose_registers(self):
        cat = Catalog()
        cat.register(make_relation())
        bwd = cat.bwdecompose("r", "a", 24)
        assert cat.is_decomposed("r", "a")
        assert cat.decomposition_of("r", "a") is bwd
        assert bwd.decomposition.residual_bits == 8
        assert not cat.is_decomposed("r", "b")

    def test_bwdecompose_roundtrip(self):
        cat = Catalog()
        rel = make_relation()
        cat.register(rel)
        bwd = cat.bwdecompose("r", "a", 26)
        assert np.array_equal(bwd.reconstruct(), rel.values("a"))

    def test_redecompose_replaces(self):
        cat = Catalog()
        cat.register(make_relation())
        cat.bwdecompose("r", "a", 24)
        bwd2 = cat.bwdecompose("r", "a", 30)
        assert cat.decomposition_of("r", "a") is bwd2
        assert bwd2.decomposition.residual_bits == 2

    def test_footprints(self):
        cat = Catalog()
        cat.register(make_relation(1000))
        cat.bwdecompose("r", "a", 24)
        cat.bwdecompose("r", "b", 24)
        assert cat.device_footprint() > 0
        assert cat.host_residual_footprint() >= 0
        listed = list(cat.decomposed_columns())
        assert {(t, c) for t, c, _ in listed} == {("r", "a"), ("r", "b")}

    def test_decompose_empty_column_rejected(self):
        cat = Catalog()
        cat.register(Relation.create("e", int_schema("a"), {"a": []}))
        with pytest.raises(DecompositionError):
            cat.bwdecompose("e", "a", 24)
