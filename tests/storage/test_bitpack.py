"""Unit and property tests for dense k-bit code packing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BitWidthError
from repro.storage.bitpack import gather_codes, pack_codes, packed_nbytes, unpack_codes


class TestPackedNbytes:
    def test_exact_word_fit(self):
        assert packed_nbytes(8, 8) == 8

    def test_partial_word_rounds_up(self):
        assert packed_nbytes(1, 1) == 8
        assert packed_nbytes(3, 24) == 16

    def test_zero_count(self):
        assert packed_nbytes(0, 13) == 0

    def test_full_width(self):
        assert packed_nbytes(5, 64) == 40

    def test_rejects_bad_bits(self):
        with pytest.raises(BitWidthError):
            packed_nbytes(4, 0)
        with pytest.raises(BitWidthError):
            packed_nbytes(4, 65)

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            packed_nbytes(-1, 8)


class TestPackUnpackRoundtrip:
    @pytest.mark.parametrize("bits", [1, 2, 3, 7, 8, 12, 13, 24, 31, 32, 33, 63, 64])
    def test_roundtrip_random(self, bits):
        rng = np.random.default_rng(bits)
        hi = (1 << bits) - 1
        codes = rng.integers(0, hi, size=257, endpoint=True, dtype=np.uint64)
        packed = pack_codes(codes, bits)
        assert np.array_equal(unpack_codes(packed, bits, len(codes)), codes)

    def test_roundtrip_empty(self):
        packed = pack_codes(np.empty(0, dtype=np.uint64), 9)
        assert packed.size == 0
        assert unpack_codes(packed, 9, 0).size == 0

    def test_single_max_code(self):
        codes = np.array([(1 << 24) - 1], dtype=np.uint64)
        packed = pack_codes(codes, 24)
        assert np.array_equal(unpack_codes(packed, 24, 1), codes)

    def test_packing_is_dense(self):
        codes = np.arange(100, dtype=np.uint64) % 8
        assert pack_codes(codes, 3).nbytes == packed_nbytes(100, 3)

    def test_accepts_signed_nonnegative(self):
        codes = np.array([0, 1, 5], dtype=np.int64)
        assert np.array_equal(
            unpack_codes(pack_codes(codes, 3), 3, 3), codes.astype(np.uint64)
        )

    def test_rejects_negative_codes(self):
        with pytest.raises(BitWidthError):
            pack_codes(np.array([-1], dtype=np.int64), 8)

    def test_rejects_overflowing_codes(self):
        with pytest.raises(BitWidthError):
            pack_codes(np.array([8], dtype=np.uint64), 3)

    def test_rejects_2d_input(self):
        with pytest.raises(BitWidthError):
            pack_codes(np.zeros((2, 2), dtype=np.uint64), 4)

    def test_rejects_float_codes(self):
        with pytest.raises(BitWidthError):
            pack_codes(np.array([1.0, 2.0]), 4)

    def test_unpack_rejects_short_stream(self):
        with pytest.raises(BitWidthError):
            unpack_codes(np.zeros(1, dtype=np.uint64), 33, 3)


class TestGather:
    def test_gather_matches_unpack(self):
        rng = np.random.default_rng(7)
        codes = rng.integers(0, 1 << 13, size=500, dtype=np.uint64)
        packed = pack_codes(codes, 13)
        pos = rng.integers(0, 500, size=64)
        assert np.array_equal(gather_codes(packed, 13, 500, pos), codes[pos])

    def test_gather_empty_positions(self):
        packed = pack_codes(np.arange(4, dtype=np.uint64), 4)
        assert gather_codes(packed, 4, 4, np.empty(0, dtype=np.int64)).size == 0

    def test_gather_out_of_range(self):
        packed = pack_codes(np.arange(4, dtype=np.uint64), 4)
        with pytest.raises(IndexError):
            gather_codes(packed, 4, 4, np.array([4]))
        with pytest.raises(IndexError):
            gather_codes(packed, 4, 4, np.array([-1]))

    def test_gather_preserves_duplicates_and_order(self):
        codes = np.array([10, 20, 30, 40], dtype=np.uint64)
        packed = pack_codes(codes, 8)
        got = gather_codes(packed, 8, 4, np.array([3, 0, 3]))
        assert np.array_equal(got, [40, 10, 40])


def naive_pack(codes, bits):
    """Per-code reference packer: one Python loop, no vectorization."""
    n_words = (len(codes) * bits + 63) // 64
    words = [0] * n_words
    word_mask = (1 << 64) - 1
    for i, code in enumerate(codes):
        word, offset = divmod(i * bits, 64)
        words[word] |= (int(code) << offset) & word_mask
        if offset + bits > 64:
            words[word + 1] |= int(code) >> (64 - offset)
    return np.array(words, dtype=np.uint64)


class TestAgainstNaiveReference:
    """The vectorized kernels must produce the reference stream bit-for-bit.

    Covers every width 1–64: the word-aligned fast paths (widths dividing
    64), widths whose codes straddle word boundaries, and the full-word
    case.
    """

    @pytest.mark.parametrize("bits", range(1, 65))
    def test_pack_stream_layout_matches_reference(self, bits):
        rng = np.random.default_rng(bits * 101)
        hi = (1 << bits) - 1
        codes = rng.integers(0, hi, size=131, endpoint=True, dtype=np.uint64)
        assert np.array_equal(pack_codes(codes, bits), naive_pack(codes, bits))

    @pytest.mark.parametrize("bits", range(1, 65))
    def test_unpack_and_gather_from_reference_stream(self, bits):
        rng = np.random.default_rng(bits * 103)
        hi = (1 << bits) - 1
        codes = rng.integers(0, hi, size=131, endpoint=True, dtype=np.uint64)
        words = naive_pack(codes, bits)
        assert np.array_equal(unpack_codes(words, bits, len(codes)), codes)
        pos = rng.integers(0, len(codes), size=40)
        assert np.array_equal(gather_codes(words, bits, len(codes), pos), codes[pos])

    @pytest.mark.parametrize("bits", [1, 2, 4, 8, 16, 32, 64])
    def test_aligned_fast_path_partial_final_word(self, bits):
        """Counts that do not fill the last word exercise the lane padding."""
        per_word = 64 // bits
        for count in (1, per_word - 1 or 1, per_word + 1, 3 * per_word - 1):
            rng = np.random.default_rng(bits * 7 + count)
            codes = rng.integers(
                0, (1 << bits) - 1, size=count, endpoint=True, dtype=np.uint64
            )
            packed = pack_codes(codes, bits)
            assert np.array_equal(packed, naive_pack(codes, bits))
            assert np.array_equal(unpack_codes(packed, bits, count), codes)

    @pytest.mark.parametrize("bits", [3, 12, 24, 33, 63])
    def test_word_straddling_codes(self, bits):
        """All-ones codes make every straddle visible in both halves."""
        codes = np.full(130, (1 << bits) - 1, dtype=np.uint64)
        packed = pack_codes(codes, bits)
        assert np.array_equal(packed, naive_pack(codes, bits))
        assert np.array_equal(unpack_codes(packed, bits, 130), codes)


@settings(max_examples=60, deadline=None)
@given(
    bits=st.integers(min_value=1, max_value=64),
    data=st.data(),
)
def test_property_pack_stream_matches_naive_reference(bits, data):
    """Fuzz the exact packed-stream layout against the per-code reference."""
    hi = (1 << bits) - 1
    codes = data.draw(
        st.lists(st.integers(min_value=0, max_value=hi), min_size=1, max_size=70)
    )
    arr = np.array(codes, dtype=np.uint64)
    assert np.array_equal(pack_codes(arr, bits), naive_pack(arr, bits))


@settings(max_examples=60, deadline=None)
@given(
    bits=st.integers(min_value=1, max_value=64),
    data=st.data(),
)
def test_property_pack_unpack_identity(bits, data):
    """Round-trip identity for arbitrary widths and code streams."""
    hi = (1 << bits) - 1
    codes = data.draw(
        st.lists(st.integers(min_value=0, max_value=hi), min_size=0, max_size=70)
    )
    arr = np.array(codes, dtype=np.uint64)
    assert np.array_equal(unpack_codes(pack_codes(arr, bits), bits, len(arr)), arr)


@settings(max_examples=40, deadline=None)
@given(
    bits=st.integers(min_value=1, max_value=63),
    n=st.integers(min_value=1, max_value=80),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_gather_agrees_with_full_unpack(bits, n, seed):
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, 1 << bits, size=n, dtype=np.uint64)
    packed = pack_codes(codes, bits)
    pos = rng.integers(0, n, size=min(n, 17))
    assert np.array_equal(
        gather_codes(packed, bits, n, pos),
        unpack_codes(packed, bits, n)[pos],
    )
