"""Tests for code-domain histograms and cost-based predicate ordering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.relax import ValueRange, relax_to_code_range
from repro.errors import StorageError
from repro.plan.expr import ColRef, Predicate
from repro.plan.logical import Query
from repro.plan.physical import ApproxProbeSelect, ApproxScanSelect
from repro.plan.rewriter import estimated_selectivity, rewrite_to_ar_plan
from repro.storage.catalog import Catalog
from repro.storage.decompose import decompose_values
from repro.storage.histogram import CodeHistogram
from repro.storage.relation import Relation, int_schema


class TestCodeHistogram:
    def test_exact_counts_at_code_granularity(self):
        values = np.array([0, 0, 1, 5, 5, 5, 7])
        col = decompose_values(values, residual_bits=0)
        h = CodeHistogram.build(col)
        assert h.total == 7
        assert h.estimate_code_range(0, 0) == 2
        assert h.estimate_code_range(5, 5) == 3
        assert h.estimate_code_range(0, 7) == 7
        assert h.estimate_code_range(2, 4) == 0

    def test_selectivity(self):
        values = np.arange(100)
        col = decompose_values(values, residual_bits=0)
        h = CodeHistogram.build(col)
        assert h.selectivity(0, 24) == pytest.approx(0.25)

    def test_range_clipping(self):
        col = decompose_values(np.arange(16), residual_bits=0)
        h = CodeHistogram.build(col)
        assert h.estimate_code_range(-5, 100) == 16
        assert h.estimate_code_range(9, 2) == 0

    def test_empty_column_rejected(self):
        col = decompose_values(np.array([1]), residual_bits=0)
        col.length = 0  # simulate degenerate state
        with pytest.raises(StorageError):
            CodeHistogram.build(col)

    def test_wide_domain_is_downsampled(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 2**30, 5000)
        col = decompose_values(values, residual_bits=0)
        h = CodeHistogram.build(col)
        assert h.codes_per_bucket > 1
        assert h.counts.size <= (1 << 16) + 1
        assert h.total == 5000

    def test_downsampled_interpolation_reasonable(self):
        values = np.arange(2**20)  # uniform
        col = decompose_values(values, residual_bits=0)
        h = CodeHistogram.build(col)
        est = h.estimate_code_range(0, 2**18 - 1)  # exactly 25%
        assert est == pytest.approx(2**18, rel=0.02)

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        residual=st.integers(0, 6),
        lo=st.integers(0, 800),
        width=st.integers(0, 300),
    )
    def test_property_histogram_matches_relaxed_count(self, seed, residual, lo, width):
        """Histogram estimate == true relaxed-candidate count (exact when
        one code per bucket)."""
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 1000, 500)
        col = decompose_values(values, residual_bits=residual)
        h = CodeHistogram.build(col)
        vr = ValueRange(lo, lo + width)
        lo_c, hi_c = relax_to_code_range(vr, col.decomposition)
        codes = col.approx_codes().astype(np.int64)
        truth = int(((codes >= lo_c) & (codes <= hi_c)).sum())
        if h.codes_per_bucket == 1:
            assert h.estimate_code_range(lo_c, hi_c) == truth


class TestCostBasedOrdering:
    @pytest.fixture()
    def catalog(self):
        cat = Catalog()
        rng = np.random.default_rng(1)
        n = 4000
        cat.register(
            Relation.create(
                "t", int_schema("wide", "narrow"),
                {
                    "wide": rng.integers(0, 1000, n),
                    "narrow": rng.integers(0, 1000, n),
                },
            )
        )
        cat.bwdecompose("t", "wide", 32)
        cat.bwdecompose("t", "narrow", 32)
        return cat

    @staticmethod
    def preds():
        unselective = Predicate(ColRef("wide"), ValueRange(0, 900))  # ~90%
        selective = Predicate(ColRef("narrow"), ValueRange(0, 50))  # ~5%
        return unselective, selective

    def test_estimated_selectivity(self, catalog):
        unselective, selective = self.preds()
        s_un = estimated_selectivity(unselective, catalog, "t")
        s_sel = estimated_selectivity(selective, catalog, "t")
        assert s_sel == pytest.approx(0.05, abs=0.02)
        assert s_un == pytest.approx(0.90, abs=0.02)

    def test_query_order_keeps_where_order(self, catalog):
        unselective, selective = self.preds()
        q = Query(table="t", where=(unselective, selective), select=("wide",))
        plan = rewrite_to_ar_plan(q, catalog, predicate_order="query")
        scan = next(op for op in plan.ops if isinstance(op, ApproxScanSelect))
        assert scan.column == "wide"

    def test_selectivity_order_puts_selective_first(self, catalog):
        unselective, selective = self.preds()
        q = Query(table="t", where=(unselective, selective), select=("wide",))
        plan = rewrite_to_ar_plan(q, catalog, predicate_order="selectivity")
        scan = next(op for op in plan.ops if isinstance(op, ApproxScanSelect))
        probe = next(op for op in plan.ops if isinstance(op, ApproxProbeSelect))
        assert scan.column == "narrow"
        assert probe.column == "wide"

    def test_unknown_order_rejected(self, catalog):
        q = Query(table="t", where=self.preds(), select=("wide",))
        with pytest.raises(Exception):
            rewrite_to_ar_plan(q, catalog, predicate_order="oracle")

    def test_cost_order_reduces_modeled_time(self, catalog):
        """The point of the exercise: selective-first is cheaper."""
        from repro import Session

        session = Session()
        session.catalog = catalog
        from repro.engine.ar_executor import ArExecutor
        from repro.engine.bulk import ClassicExecutor

        session._ar = ArExecutor(catalog, session.machine)
        session._classic = ClassicExecutor(catalog, session.machine.cpu)
        for _, _, bwd in catalog.decomposed_columns():
            session.machine.gpu.load_column(str(id(bwd)), bwd, None)

        unselective, selective = self.preds()
        q = Query(
            table="t", where=(unselective, selective),
            aggregates=(__import__("repro").Aggregate("count", None, "n"),),
        )
        naive = session.query(q, predicate_order="query")
        ordered = session.query(q, predicate_order="selectivity")
        assert naive.scalar("n") == ordered.scalar("n")
        assert (
            ordered.timeline.total_seconds() < naive.timeline.total_seconds()
        )
