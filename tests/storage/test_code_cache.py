"""The zero-unpack code cache: correctness and modeled-time invariance.

The decoded-code views memoized on :class:`BwdColumn` are a wall-clock
optimization only.  These tests pin the two contracts PERFORMANCE.md
documents: (1) cached reads are identical to packed-stream reads, and
(2) modeled :class:`Timeline` seconds are byte-identical whether a kernel
runs against a cold packed stream or a warm cache.
"""

import numpy as np
import pytest

from repro.core.approximate import select_approx, select_approx_narrow
from repro.core.relax import ValueRange
from repro.device.gpu import SimulatedGPU
from repro.device.model import DeviceSpec
from repro.device.timeline import Timeline
from repro.storage.bitpack import unpack_codes
from repro.storage.decompose import BwdColumn, decompose_values
from repro.workloads.tpch import TpchConfig, build_tpch_session, q6_sql


def small_gpu() -> SimulatedGPU:
    spec = DeviceSpec(
        name="tiny-gpu", kind="gpu", memory_capacity=10**7,
        seq_bandwidth=150e9, random_bandwidth=20e9, launch_overhead=5e-6,
    )
    return SimulatedGPU(spec, processing_reserve_fraction=0.1)


def cold_column(values, residual_bits=4) -> BwdColumn:
    """A column whose caches are unseeded (packed streams only)."""
    warm = decompose_values(np.asarray(values), residual_bits=residual_bits)
    return BwdColumn(
        warm.decomposition, warm.length, warm._approx_words, warm._residual_words
    )


class TestCacheCorrectness:
    def test_cached_views_match_packed_stream(self):
        values = np.random.default_rng(5).integers(0, 10_000, 500)
        col = cold_column(values)
        dec = col.decomposition
        expected_approx = unpack_codes(
            col._approx_words, max(dec.approx_bits, 1), col.length
        )
        expected_res = unpack_codes(
            col._residual_words, dec.residual_bits, col.length
        )
        assert np.array_equal(col.approx_codes(), expected_approx)
        assert np.array_equal(col.residuals(), expected_res)
        # second call returns the same memoized object
        assert col.approx_codes() is col.approx_codes()
        assert col.residuals() is col.residuals()
        assert np.array_equal(col.approx_codes_i64(), expected_approx.astype(np.int64))

    def test_from_values_seeds_cache(self):
        values = np.arange(100)
        col = decompose_values(values, residual_bits=3)
        assert col._approx_cache is not None
        assert col._residual_cache is not None
        assert np.array_equal(col.reconstruct(), values)

    def test_cached_views_are_read_only(self):
        col = decompose_values(np.arange(64), residual_bits=2)
        with pytest.raises(ValueError):
            col.approx_codes()[0] = 1
        with pytest.raises(ValueError):
            col.residuals()[0] = 1
        with pytest.raises(ValueError):
            col.approx_codes_i64()[0] = 1

    def test_warm_gather_matches_packed_gather(self):
        values = np.random.default_rng(9).integers(0, 1 << 20, 300)
        cold = cold_column(values, residual_bits=7)
        warm = decompose_values(values, residual_bits=7)
        pos = np.array([0, 7, 299, 7, 150])
        assert np.array_equal(cold.approx_at(pos), warm.approx_at(pos))
        assert np.array_equal(cold.residual_at(pos), warm.residual_at(pos))
        assert np.array_equal(cold.reconstruct(pos), values[pos])

    def test_warm_gather_validates_positions(self):
        col = decompose_values(np.arange(10), residual_bits=2)
        with pytest.raises(IndexError):
            col.approx_at(np.array([10]))
        with pytest.raises(IndexError):
            col.residual_at(np.array([-1]))


def spans_of(timeline: Timeline):
    return [
        (s.device, s.kind, s.op, s.nbytes, s.seconds, s.phase)
        for s in timeline._spans
    ]


class TestModeledTimeInvariance:
    """Warm caches must never change what the device model charges."""

    def test_scan_cold_equals_warm(self):
        values = np.random.default_rng(1).integers(0, 100_000, 4000)
        gpu = small_gpu()
        timelines = []
        for col in (cold_column(values), decompose_values(values, residual_bits=4)):
            gpu.load_column(f"c{len(timelines)}", col, None)
            t = Timeline()
            gpu.scan_code_range(col, 10, 4000, t)
            gpu.scan_code_range(col, 10, 4000, t)  # repeat: cache now warm
            timelines.append(spans_of(t))
        assert timelines[0] == timelines[1]
        # the two identical scans inside each timeline charge identically
        first, second = timelines[0][0], timelines[0][1]
        assert first == second

    def test_conjunction_cold_equals_warm(self):
        values = np.random.default_rng(2).integers(0, 100_000, 4000)
        gpu = small_gpu()
        results = []
        for col in (cold_column(values), decompose_values(values, residual_bits=4)):
            gpu.load_column(f"k{len(results)}", col, None)
            t = Timeline()
            cand = select_approx(
                gpu, t, col, "v", ValueRange.between(1000, 60_000)
            )
            cand = select_approx_narrow(
                gpu, t, col, "v2", ValueRange.between(2000, 50_000), cand
            )
            results.append((spans_of(t), cand.ids.tolist()))
        assert results[0] == results[1]

    def test_end_to_end_query_timeline_is_stable_across_runs(self):
        """Executing the same query twice (second run fully cache-warm)
        must charge byte-identical modeled seconds."""
        session = build_tpch_session(TpchConfig(scale_factor=0.002, seed=3))
        runs = [spans_of(session.execute(q6_sql(), mode="ar").timeline)
                for _ in range(2)]
        assert runs[0] == runs[1]
        assert any(kind == "gpu" for _, kind, *_ in runs[0])
