"""Tests for radix-clustered bitwise storage (§II-A physical layout)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BitWidthError, DecompositionError
from repro.storage.cluster import RadixClusteredColumn


class TestConstruction:
    def test_roundtrip_original_order(self):
        rng = np.random.default_rng(0)
        values = rng.integers(-5000, 100_000, 3_000)
        col = RadixClusteredColumn(values, cluster_bits=6)
        assert np.array_equal(col.reconstruct_all(), values)

    def test_cluster_count_bounded_by_radix(self):
        values = np.arange(10_000)
        col = RadixClusteredColumn(values, cluster_bits=4)
        assert 1 <= col.n_clusters <= 16

    def test_clusters_partition_rows(self):
        values = np.random.default_rng(1).integers(0, 1000, 500)
        col = RadixClusteredColumn(values, cluster_bits=3)
        total = sum(c.count for c in col.clusters)
        assert total == 500
        assert sorted(np.concatenate(
            [col.row_ids[c.start:c.stop] for c in col.clusters]
        ).tolist()) == list(range(500))

    def test_empty_rejected(self):
        with pytest.raises(DecompositionError):
            RadixClusteredColumn(np.array([], dtype=np.int64))

    def test_invalid_cluster_bits(self):
        with pytest.raises(BitWidthError):
            RadixClusteredColumn(np.array([1, 2]), cluster_bits=0)

    def test_constant_column_single_cluster(self):
        col = RadixClusteredColumn(np.full(100, 42))
        assert col.n_clusters == 1
        assert np.array_equal(col.reconstruct_all(), np.full(100, 42))


class TestCompression:
    def test_clustered_values_beat_global_base_on_clustered_data(self):
        """The §VI-C3 claim: clustering improves compression when values
        are locally correlated (like GPS trips)."""
        rng = np.random.default_rng(2)
        centers = rng.integers(0, 2**26, 64)
        values = np.concatenate(
            [c + rng.integers(0, 2**10, 500) for c in centers]
        )
        col = RadixClusteredColumn(values, cluster_bits=8)
        assert col.packed_nbytes < 0.7 * col.flat_packed_nbytes

    def test_uniform_data_gains_little(self):
        values = np.random.default_rng(3).integers(0, 2**26, 5_000)
        col = RadixClusteredColumn(values, cluster_bits=6)
        # per-cluster bases still shave the radix bits, but not much more
        assert col.packed_nbytes < col.flat_packed_nbytes
        assert col.packed_nbytes > 0.5 * col.flat_packed_nbytes


class TestRangeScan:
    def test_scan_matches_naive_filter(self):
        rng = np.random.default_rng(4)
        values = rng.integers(0, 100_000, 4_000)
        col = RadixClusteredColumn(values, cluster_bits=6)
        ids, _ = col.range_scan(20_000, 30_000)
        expected = np.flatnonzero((values >= 20_000) & (values <= 30_000))
        assert sorted(ids.tolist()) == sorted(expected.tolist())

    def test_open_ended_ranges(self):
        values = np.arange(1000)
        col = RadixClusteredColumn(values, cluster_bits=4)
        ids, _ = col.range_scan(None, 99)
        assert sorted(ids.tolist()) == list(range(100))
        ids, _ = col.range_scan(900, None)
        assert sorted(ids.tolist()) == list(range(900, 1000))

    def test_locality_narrow_range_reads_few_bytes(self):
        """The access-locality win: a narrow range touches a fraction of
        the bytes a full scan would."""
        values = np.random.default_rng(5).permutation(1 << 16)
        col = RadixClusteredColumn(values, cluster_bits=8)
        _, narrow_bytes = col.range_scan(0, 255)  # one radix bucket
        _, full_bytes = col.range_scan(None, None)
        assert narrow_bytes < full_bytes / 50

    def test_miss_range_reads_nothing(self):
        col = RadixClusteredColumn(np.arange(100), cluster_bits=4)
        ids, nbytes = col.range_scan(10_000, 20_000)
        assert ids.size == 0 and nbytes == 0

    def test_overlap_pruning_sound(self):
        values = np.random.default_rng(6).integers(0, 10_000, 2_000)
        col = RadixClusteredColumn(values, cluster_bits=5)
        kept = col.clusters_overlapping(2_000, 4_000)
        for i, c in enumerate(col.clusters):
            chunk = col.cluster_values(i)
            has_match = bool(((chunk >= 2_000) & (chunk <= 4_000)).any())
            if has_match:
                assert i in kept


@settings(max_examples=50, deadline=None)
@given(
    values=st.lists(st.integers(-(2**30), 2**30), min_size=1, max_size=120),
    cluster_bits=st.integers(1, 12),
    lo=st.integers(-(2**30), 2**30),
    width=st.integers(0, 2**28),
)
def test_property_clustered_scan_equals_filter(values, cluster_bits, lo, width):
    arr = np.array(values, dtype=np.int64)
    col = RadixClusteredColumn(arr, cluster_bits=cluster_bits)
    assert np.array_equal(col.reconstruct_all(), arr)
    ids, _ = col.range_scan(lo, lo + width)
    expected = np.flatnonzero((arr >= lo) & (arr <= lo + width))
    assert sorted(ids.tolist()) == sorted(expected.tolist())
