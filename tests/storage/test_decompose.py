"""Tests for bitwise decomposition & prefix compression (paper §II-A)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecompositionError
from repro.storage.decompose import (
    BwdColumn,
    Decomposition,
    decompose_values,
    plan_decomposition,
)


class TestDecompositionShape:
    def test_paper_example_figure2(self):
        """Fig 2: 747979 as 32-bit int → 13 major bits + 7 minor bits.

        With the leading zeros removed the value 747979 needs 20 bits; the
        figure splits them 13 (fast memory) / 7 (slow memory).
        """
        d = Decomposition(base=0, total_bits=20, residual_bits=7)
        assert d.approx_bits == 13
        v = 747979
        code = d.approx_code_of(v)
        residual = v - d.value_floor(code)
        assert code == v >> 7
        assert residual == v & 0b1111111
        assert d.combine(np.array([code]), np.array([residual]))[0] == v

    def test_bucket_and_error(self):
        d = Decomposition(base=0, total_bits=16, residual_bits=4)
        assert d.bucket == 16
        assert d.max_error == 15
        assert d.max_code == (1 << 12) - 1

    def test_zero_residual(self):
        d = Decomposition(base=0, total_bits=8, residual_bits=0)
        assert d.bucket == 1
        assert d.max_error == 0

    def test_invalid_shapes(self):
        with pytest.raises(DecompositionError):
            Decomposition(base=0, total_bits=0, residual_bits=0)
        with pytest.raises(DecompositionError):
            Decomposition(base=0, total_bits=8, residual_bits=9)
        with pytest.raises(DecompositionError):
            Decomposition(base=0, total_bits=65, residual_bits=0)

    def test_value_bounds(self):
        d = Decomposition(base=100, total_bits=10, residual_bits=3)
        assert d.value_floor(0) == 100
        assert d.value_ceil(0) == 107
        assert d.value_floor(1) == 108


class TestPlanDecomposition:
    def test_device_bits_api_matches_paper(self):
        """bwdecompose(A, 24) on a 32-bit int → 8 residual bits (§V-A)."""
        values = np.arange(1 << 20)  # needs 20 effective bits
        plan = plan_decomposition(values, device_bits=24, storage_bits=32)
        assert plan.residual_bits == 8
        assert plan.total_bits == 20
        assert plan.approx_bits == 12

    def test_prefix_compression_uses_min_as_base(self):
        values = np.array([1000, 1010, 1023])
        plan = plan_decomposition(values, residual_bits=2)
        assert plan.base == 1000
        assert plan.total_bits == 5  # span 23 → 5 bits

    def test_prefix_compression_handles_negatives(self):
        values = np.array([-50, -10, 20])
        plan = plan_decomposition(values, residual_bits=3)
        assert plan.base == -50
        assert plan.total_bits == 7  # span 70

    def test_no_prefix_compression(self):
        values = np.array([1000, 1023])
        plan = plan_decomposition(values, residual_bits=2, prefix_compression=False)
        assert plan.base == 0
        assert plan.total_bits == 10

    def test_no_prefix_compression_rejects_negatives(self):
        with pytest.raises(DecompositionError):
            plan_decomposition(
                np.array([-1, 4]), residual_bits=1, prefix_compression=False
            )

    def test_residual_clamped_to_total(self):
        values = np.array([0, 3])  # 2 effective bits
        plan = plan_decomposition(values, device_bits=1, storage_bits=32)
        assert plan.residual_bits == 2
        assert plan.approx_bits == 0  # degenerate but legal

    def test_requires_some_split_spec(self):
        with pytest.raises(DecompositionError):
            plan_decomposition(np.array([1, 2]))

    def test_rejects_empty(self):
        with pytest.raises(DecompositionError):
            plan_decomposition(np.array([], dtype=np.int64), device_bits=8)

    def test_rejects_nonpositive_device_bits(self):
        with pytest.raises(DecompositionError):
            plan_decomposition(np.array([1, 2]), device_bits=0)

    def test_constant_column(self):
        plan = plan_decomposition(np.array([7, 7, 7]), device_bits=24)
        assert plan.total_bits == 1
        assert plan.base == 7


class TestSplitCombine:
    def test_roundtrip(self):
        values = np.array([100, 163, 101, 255, 100])
        d = plan_decomposition(values, residual_bits=4)
        approx, residual = d.split(values)
        assert np.array_equal(d.combine(approx, residual), values)

    def test_split_out_of_domain_rejected(self):
        d = Decomposition(base=10, total_bits=4, residual_bits=1)
        with pytest.raises(DecompositionError):
            d.split(np.array([9]))
        with pytest.raises(DecompositionError):
            d.split(np.array([10 + 16]))

    def test_combine_requires_residual_when_split(self):
        d = Decomposition(base=0, total_bits=8, residual_bits=2)
        with pytest.raises(DecompositionError):
            d.combine(np.array([1]), None)

    def test_bounds_bracket_values(self):
        values = np.array([0, 5, 63, 64, 200])
        d = plan_decomposition(values, residual_bits=5)
        approx, _ = d.split(values)
        lo = d.approx_lower_bounds(approx)
        hi = d.approx_upper_bounds(approx)
        assert np.all(lo <= values)
        assert np.all(values <= hi)
        assert np.all(hi - lo == d.max_error)


class TestBwdColumn:
    def test_reconstruct_full(self):
        rng = np.random.default_rng(3)
        values = rng.integers(-1000, 100000, size=999)
        col = decompose_values(values, device_bits=24)
        assert np.array_equal(col.reconstruct(), values)

    def test_reconstruct_subset(self):
        values = np.arange(500, 0, -1)
        col = decompose_values(values, residual_bits=3)
        pos = np.array([0, 17, 499])
        assert np.array_equal(col.reconstruct(pos), values[pos])

    def test_fully_resident_column(self):
        values = np.array([3, 1, 2])
        col = decompose_values(values, device_bits=32)
        assert not col.is_distributed
        assert col.residual_nbytes == 0
        assert np.array_equal(col.reconstruct(), values)
        assert np.array_equal(col.residual_at(np.array([0, 2])), [0, 0])

    def test_footprints_scale_with_resolution(self):
        values = np.arange(1 << 16)
        wide = decompose_values(values, residual_bits=0)
        narrow = decompose_values(values, residual_bits=8)
        assert narrow.approx_nbytes < wide.approx_nbytes
        assert narrow.residual_nbytes > 0

    def test_prefix_compression_saves_space(self):
        """§VI-C2: factoring out the common prefix shrinks the footprint."""
        values = np.arange(2_000_000, 2_000_000 + 4096)
        with_pc = decompose_values(values, residual_bits=4)
        without_pc = decompose_values(values, residual_bits=4, prefix_compression=False)
        total_with = with_pc.approx_nbytes + with_pc.residual_nbytes
        total_without = without_pc.approx_nbytes + without_pc.residual_nbytes
        assert total_with < total_without

    def test_approx_codes_monotone_in_values(self):
        values = np.sort(np.random.default_rng(0).integers(0, 10**6, size=256))
        col = decompose_values(values, residual_bits=8)
        codes = col.approx_codes().astype(np.int64)
        assert np.all(np.diff(codes) >= 0)


@settings(max_examples=80, deadline=None)
@given(
    values=st.lists(
        st.integers(min_value=-(2**40), max_value=2**40), min_size=1, max_size=60
    ),
    residual_bits=st.integers(min_value=0, max_value=41),
)
def test_property_decompose_reconstruct_identity(values, residual_bits):
    """Invariant 1: reconstruct(decompose(v)) == v for any split."""
    arr = np.array(values, dtype=np.int64)
    col = decompose_values(arr, residual_bits=residual_bits)
    assert np.array_equal(col.reconstruct(), arr)


@settings(max_examples=60, deadline=None)
@given(
    values=st.lists(
        st.integers(min_value=0, max_value=2**32 - 1), min_size=1, max_size=50
    ),
    residual_bits=st.integers(min_value=0, max_value=32),
)
def test_property_approximation_brackets_value(values, residual_bits):
    """approx floor ≤ v ≤ approx floor + max_error, always."""
    arr = np.array(values, dtype=np.int64)
    d = plan_decomposition(arr, residual_bits=residual_bits)
    approx, _ = d.split(arr)
    assert np.all(d.approx_lower_bounds(approx) <= arr)
    assert np.all(arr <= d.approx_upper_bounds(approx))
