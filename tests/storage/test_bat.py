"""Tests for the Binary Association Table primitive."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage.bat import BAT


class TestConstruction:
    def test_dense_head_is_void(self):
        bat = BAT.dense(np.array([5, 6, 7]))
        assert bat.has_void_head
        assert np.array_equal(bat.head, [0, 1, 2])

    def test_dense_head_with_seqbase(self):
        bat = BAT.dense(np.array([5, 6]), hseqbase=10)
        assert np.array_equal(bat.head, [10, 11])

    def test_pairs_materializes_head(self):
        bat = BAT.pairs(np.array([3, 1]), np.array([30, 10]))
        assert not bat.has_void_head
        assert np.array_equal(bat.head, [3, 1])

    def test_misaligned_head_rejected(self):
        with pytest.raises(StorageError):
            BAT.pairs(np.array([1, 2, 3]), np.array([1, 2]))

    def test_2d_tail_rejected(self):
        with pytest.raises(StorageError):
            BAT.dense(np.zeros((2, 2)))

    def test_len_and_repr(self):
        bat = BAT.dense(np.array([1, 2, 3]))
        assert len(bat) == 3
        assert "void" in repr(bat)
        assert "oid" in repr(bat.materialize_head())


class TestHeadProperties:
    def test_void_head_sorted_and_dense(self):
        bat = BAT.dense(np.array([9, 8, 7]))
        assert bat.head_is_sorted()
        assert bat.head_is_dense()

    def test_sorted_but_not_dense(self):
        bat = BAT.pairs(np.array([1, 3, 7]), np.array([0, 0, 0]))
        assert bat.head_is_sorted()
        assert not bat.head_is_dense()

    def test_unsorted_head(self):
        bat = BAT.pairs(np.array([3, 1, 7]), np.array([0, 0, 0]))
        assert not bat.head_is_sorted()
        assert not bat.head_is_dense()

    def test_empty_bat_is_dense(self):
        bat = BAT.pairs(np.array([], dtype=np.int64), np.array([], dtype=np.int64))
        assert bat.head_is_dense()

    def test_nbytes_counts_materialized_head(self):
        tail = np.zeros(8, dtype=np.int64)
        assert BAT.dense(tail).nbytes == tail.nbytes
        assert BAT.pairs(np.arange(8), tail).nbytes == 2 * tail.nbytes


class TestOperations:
    def test_take_keeps_original_ids(self):
        bat = BAT.dense(np.array([10, 20, 30, 40]))
        sub = bat.take(np.array([2, 0]))
        assert np.array_equal(sub.tail, [30, 10])
        assert np.array_equal(sub.head, [2, 0])

    def test_project_onto_is_positional(self):
        bat = BAT.dense(np.array([10, 20, 30, 40]), hseqbase=100)
        out = bat.project_onto(np.array([103, 101]))
        assert np.array_equal(out.tail, [40, 20])
        assert np.array_equal(out.head, [103, 101])

    def test_project_onto_requires_void_head(self):
        bat = BAT.pairs(np.array([0, 1]), np.array([1, 2]))
        with pytest.raises(StorageError):
            bat.project_onto(np.array([0]))

    def test_project_onto_range_checked(self):
        bat = BAT.dense(np.array([1, 2]))
        with pytest.raises(StorageError):
            bat.project_onto(np.array([2]))

    def test_slice_void_adjusts_seqbase(self):
        bat = BAT.dense(np.array([10, 20, 30, 40]), hseqbase=5)
        sub = bat.slice(1, 3)
        assert sub.has_void_head
        assert np.array_equal(sub.head, [6, 7])
        assert np.array_equal(sub.tail, [20, 30])

    def test_slice_materialized(self):
        bat = BAT.pairs(np.array([9, 4, 6]), np.array([1, 2, 3]))
        sub = bat.slice(1, 3)
        assert np.array_equal(sub.head, [4, 6])

    def test_with_tail_checks_alignment(self):
        bat = BAT.dense(np.array([1, 2, 3]))
        out = bat.with_tail(np.array([4, 5, 6]))
        assert np.array_equal(out.tail, [4, 5, 6])
        with pytest.raises(StorageError):
            bat.with_tail(np.array([1]))
