"""Setup shim.

The execution environment has setuptools but no ``wheel`` package and no
network, so PEP 660 editable installs (``pip install -e .``) cannot build an
editable wheel.  This shim lets the legacy ``python setup.py develop`` path
(used automatically by older pip, or directly) provide the editable install.
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
