"""Fig 8a/8b/8c: the selection microbenchmarks (paper §VI-B).

Paper claims reproduced here:

* 8a — on GPU-resident data the A&R selection beats the MonetDB selection
  at *every* selectivity, and the approximate phase alone is far below the
  streaming lower bound.
* 8b — on distributed data (8 residual bits) refinement costs grow with
  selectivity; MonetDB wins once more than ~60% of tuples qualify.
* 8c — with fewer device-resident bits the false-positive overhead hurts
  selective queries most; unselective queries tolerate low resolution.
"""

from conftest import show

from repro.bench.figures import fig8_selection, fig8c_selection_bits
from repro.bench.harness import crossover_x


def test_fig8a_selection_gpu_resident(benchmark, bench_n):
    exp = benchmark(fig8_selection, bench_n)
    show(exp)
    ar = exp.get("Approximate + Refine")
    monetdb = exp.get("MonetDB")
    approx = exp.get("Approximate")
    stream = exp.get("Stream (Hypothetical)")

    # A&R outperforms MonetDB across the whole sweep (paper §VI-B).
    assert crossover_x(exp, "Approximate + Refine", "MonetDB") is None
    # MonetDB cost grows with selectivity (output materialization).
    assert monetdb.seconds[-1] > monetdb.seconds[0]
    # The approximation is cheaper than streaming the input even once.
    assert max(approx.seconds) < stream.seconds[0]
    # Fully resident: refinement adds nothing, the lines coincide.
    for p_ar, p_ap in zip(ar.points, approx.points):
        assert p_ar.seconds == p_ap.seconds


def test_fig8b_selection_distributed(benchmark, bench_n):
    exp = benchmark(fig8_selection, bench_n, residual_bits=8)
    show(exp)
    cross = crossover_x(exp, "Approximate + Refine", "MonetDB")
    # Paper: "unless ... the selectivity is above 60%" — the crossover must
    # exist and sit in the upper half of the sweep.
    assert cross is not None
    assert 40 <= cross <= 80, f"crossover at {cross}%, paper ≈60%"
    # Below the crossover A&R wins.
    ar, monetdb = exp.get("Approximate + Refine"), exp.get("MonetDB")
    assert ar.at(10).seconds < monetdb.at(10).seconds
    # Refinement is real work here: A&R is strictly above approximate-only.
    approx = exp.get("Approximate")
    for p_ar, p_ap in zip(ar.points, approx.points):
        assert p_ar.seconds > p_ap.seconds


def test_fig8c_selection_bit_sweep(benchmark, bench_n):
    exp = benchmark(fig8c_selection_bits, bench_n)
    show(exp)
    bits = exp.get("Approximate + Refine (5%)").xs
    # The sweep's last point is full residency (no residual): refinement
    # vanishes there.  The paper's resolution claims concern the
    # *distributed* region, so compare within it.
    distributed = bits[:-1]
    lo_bits, hi_bits = distributed[0], distributed[-1]

    def total(pct, b):
        return exp.get(f"Approximate + Refine ({pct}%)").at(b).seconds

    def overhead(pct, b):
        """Ship + refinement cost beyond the pure approximation."""
        return total(pct, b) - exp.get(f"Approximate ({pct}%)").at(b).seconds

    # More resident bits → fewer false positives → less refinement work,
    # for the selective queries where false positives dominate true hits.
    for pct in ("0.05", "0.01"):
        assert overhead(pct, lo_bits) > 1.3 * overhead(pct, hi_bits), pct

    # Paper: "when more tuples satisfy the predicate, fewer bits are needed
    # to achieve close to optimal performance" — the 5% query is flat
    # across the distributed region (true positives dominate its cost) ...
    s5 = [total("5", b) for b in distributed]
    assert max(s5) < 1.15 * min(s5)
    # ... while the selective query pays a larger relative penalty at the
    # lowest resolution.
    penalty_5 = total("5", lo_bits) / min(s5)
    s001 = [total("0.01", b) for b in distributed]
    penalty_001 = total("0.01", lo_bits) / min(s001)
    assert penalty_001 > penalty_5

    # Full residency is optimal for every selectivity (sanity anchor).
    full = bits[-1]
    for pct in ("5", "0.05", "0.01"):
        assert total(pct, full) <= min(total(pct, b) for b in distributed) * 1.01
