"""Fig 9 + Table I: the spatial range query benchmark (paper §VI-C).

Paper numbers at ~250M GPS points: A&R 0.134 s, MonetDB 0.529 s (3.9×),
Stream (Hypothetical) 0.453 s (3.4× vs A&R); ~80% of A&R time on the GPU;
prefix compression saves ~25% of the coordinate data volume.
"""

from conftest import show

from repro.bench.figures import fig9_spatial
from repro.workloads.spatial import SpatialConfig


def test_fig9_spatial_range_queries(benchmark, spatial_points):
    config = SpatialConfig(n_points=spatial_points)
    exp = benchmark(fig9_spatial, config)
    show(exp)

    ar = exp.get("A & R").points[0]
    monetdb = exp.get("MonetDB").points[0]
    stream = exp.get("Stream (Hypothetical)").points[0]

    # Who wins: A&R beats both the CPU-only engine and the streaming bound.
    assert ar.seconds < monetdb.seconds
    assert ar.seconds < stream.seconds
    # By roughly what factor: paper reports 3.9× over MonetDB and 3.4× over
    # streaming; accept the same ballpark.
    assert 2.0 <= monetdb.seconds / ar.seconds <= 8.0
    assert 1.5 <= stream.seconds / ar.seconds <= 8.0
    # Streaming the input is almost as expensive as CPU evaluation (§VI-C3).
    assert stream.seconds > 0.4 * monetdb.seconds

    # Most of the A&R time is spent processing on the GPU (paper: ~80%).
    gpu_share = ar.breakdown.get("gpu", 0.0) / ar.seconds
    assert gpu_share > 0.5, f"GPU share {gpu_share:.0%}"

    # Table I decomposition + §VI-C2 compression note travel in exp.notes.
    assert "25%" in exp.notes or "reduction" in exp.notes
