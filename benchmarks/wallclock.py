"""Wall-clock benchmark suite for the simulation's hot paths.

Measures *real* elapsed seconds — not modeled Timeline seconds — of the
paths the perf PRs target: bit-(un)packing, the relaxed selection scan, a
three-predicate conjunction, the theta/band join (sorted interval join vs
the brute-force oracle; large and extra-large sizes only the sorted path —
and at xlarge only its *run-length* emission — can touch; a repeated-join
entry for the memoized sort permutations; the whole run-length A&R
pipeline; a builder-path ``count(*)`` over the large band join that
*asserts* the aggregate-only fast path never materializes a pair), a
TPC-H Q6-shaped A&R run at ≥ 1M lineitem rows, and the
``serve.throughput.*`` family: the same mixed selection-query set pushed
through the multi-query scheduler at batch widths 1/4/16, so
``b1 / b16`` is the measured batching speedup (PR 5's acceptance
criterion asks for ≥ 2×).

Three entry points:

* **Smoke target** (pytest-benchmark)::

      PYTHONPATH=src python -m pytest benchmarks/wallclock.py -q

  The file name deliberately does not match ``test_*.py`` so the full-size
  suite is *not* collected by the default tier-1 run — it is an explicit
  target.  The tier-1 run instead collects
  ``tests/bench/test_wallclock_smoke.py``, which executes this suite once
  in ``--quick`` shape so the harness itself cannot rot between perf PRs.

* **Quick smoke** (plain script)::

      PYTHONPATH=src python benchmarks/wallclock.py --quick

  Small inputs, one rep, prints timings, records nothing.

* **Trajectory recorder** (plain script)::

      PYTHONPATH=src python benchmarks/wallclock.py --label after --out BENCH_PR3.json

  Times every benchmark (best of ``--reps``) and merges the results into
  the ``--out`` file (default ``BENCH_PR3.json``) at the repo root under
  the given label.  When both ``before`` and ``after`` labels are present,
  per-benchmark speedups are (re)computed, giving future PRs a wall-clock
  perf trajectory.  Each PR's ``before`` point is seeded from the previous
  PR file's ``after`` (the prior code's measurements);
  ``join.theta.band.bruteforce`` gives the same-machine oracle cost next
  to the sorted path.

* **Trajectory gate** (plain script)::

      PYTHONPATH=src python benchmarks/wallclock.py --compare BENCH_PR4.json
      PYTHONPATH=src python benchmarks/wallclock.py --compare BENCH_PR2.json BENCH_PR3.json

  Prints a per-benchmark speedup table and exits nonzero when any shared
  benchmark regresses beyond ``--threshold`` (default 0.85×) — the
  machine-checkable form of "no recorded benchmark quietly got slower".
  With a single file, the gate compares that file's own ``before`` →
  ``after`` points, which the recording convention guarantees were
  measured on the same machine (each PR re-measures its ``before`` from
  the prior code); this is the form CI runs.  With two files it compares
  their ``after`` points — meaningful only when both were recorded on the
  same machine, since wall-clock numbers do not transfer across hosts.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.approximate import select_approx, select_approx_narrow
from repro.core.candidates import RunPairCandidates
from repro.core.refine import ship_pairs
from repro.core.relax import ValueRange
from repro.core.theta import Theta, ThetaOp, theta_join_approx, theta_join_refine
from repro.device.machine import Machine
from repro.device.timeline import Timeline
from repro.engine.session import Session
from repro.serve.bench import build_serve_session, query_ranges, run_once
from repro.storage.bitpack import gather_codes, pack_codes, unpack_codes
from repro.storage.column import IntType
from repro.storage.decompose import decompose_values
from repro.workloads.microbench import unique_shuffled_ints
from repro.workloads.tpch import TpchConfig, build_tpch_session, q6_sql

#: Rows for the micro / scan benchmarks (acceptance floor: 1M).
N_ROWS = int(os.environ.get("REPRO_WALLCLOCK_N", 1_000_000))

#: TPC-H scale factor; 0.17 ≈ 1.02M lineitem rows (acceptance floor: 1M).
TPCH_SF = float(os.environ.get("REPRO_WALLCLOCK_SF", 0.17))

#: Theta-join side sizes: the PR-1 trajectory point; a larger size at
#: which only the sort-based join is feasible (the brute-force oracle would
#: evaluate 10^10 interval comparisons there); and an extra-large size
#: (≥ 1M × 200k, ~37M candidate pairs) at which even *materializing* the
#: sorted join's pairs is the dominant cost — only the run-length encoded
#: emission (PR 3) keeps it interactive.
THETA_SIZES = (20_000, 5_000)
THETA_LARGE_SIZES = (200_000, 50_000)
THETA_XLARGE_SIZES = (1_000_000, 200_000)

#: Joins re-hitting one dimension column (amortized sort permutations).
THETA_REPEAT_JOINS = 4

#: Queries per serve.throughput entry; batch widths 1/4/16 sweep the
#: scheduler from solo execution to full fusion over the same query set,
#: so time(b1)/time(b16) IS the batching speedup on this machine.
SERVE_QUERIES = 32
QUICK_SERVE_QUERIES = 8

#: Queries per shard.* entry (narrow windows; pruning routes each to ~1
#: shard, so the s4/s1 ratio is the real scale-out speedup).
SHARD_QUERIES = 16
QUICK_SHARD_QUERIES = 6

#: --quick shape: small everything, for smoke runs and the tier-1 test.
QUICK_N_ROWS = 20_000
QUICK_TPCH_SF = 0.002
QUICK_THETA_SIZES = (2_000, 600)
QUICK_THETA_LARGE_SIZES = (5_000, 1_200)
QUICK_THETA_XLARGE_SIZES = (8_000, 2_000)

#: Queries per ingest.mixed.* entry: a 95/5 read/write mix (one write per
#: 20 submits, see repro.ingest.bench.WRITE_EVERY) served at batch 16 with
#: execution interleaved into submission, so watermark compactions land
#: mid-run where a real server would pay them.
INGEST_QUERIES = 100
QUICK_INGEST_QUERIES = 20
INGEST_WRITE_ROWS = 256

#: Per-PR trajectory file; older PRs' files (BENCH_PR1..PR9) are kept as
#: recorded history and compared against via ``--compare``.
_RESULT_FILE = Path(__file__).resolve().parent.parent / "BENCH_PR10.json"

#: The opt.pick.theta fixture's small right side: under the heuristic's
#: sort cutoff, so "before" (the heuristic) brute-forces while "after"
#: (the cost-based optimizer) picks the sorted sweep.
OPT_THETA_RIGHT = 16

#: ``--compare`` flags a shared benchmark whose after/before speedup drops
#: below this factor.
REGRESSION_THRESHOLD = 0.85


# ----------------------------------------------------------------------
# Fixtures (built once per shape, outside the timed region)
# ----------------------------------------------------------------------
class _Fixtures:
    """Lazily-built shared inputs; construction is never timed."""

    _instances: dict[bool, "_Fixtures"] = {}

    def __init__(self, quick: bool) -> None:
        self.n_rows = QUICK_N_ROWS if quick else N_ROWS
        self.tpch_sf = QUICK_TPCH_SF if quick else TPCH_SF
        theta_sizes = QUICK_THETA_SIZES if quick else THETA_SIZES
        theta_large = QUICK_THETA_LARGE_SIZES if quick else THETA_LARGE_SIZES
        theta_xlarge = QUICK_THETA_XLARGE_SIZES if quick else THETA_XLARGE_SIZES

        rng = np.random.default_rng(42)
        n = self.n_rows
        self.codes12 = rng.integers(0, 1 << 12, size=n, dtype=np.uint64)
        self.codes8 = rng.integers(0, 1 << 8, size=n, dtype=np.uint64)
        self.packed8 = pack_codes(self.codes8, 8)
        self.packed12 = pack_codes(self.codes12, 12)
        self.positions = rng.integers(0, n, size=n // 8, dtype=np.int64)

        self.machine = Machine.paper_testbed()
        self.columns = []
        for i in range(3):
            col = decompose_values(unique_shuffled_ints(n, seed=i), device_bits=24)
            self.machine.gpu.load_column(f"c{i}", col, None)
            self.columns.append(col)

        self.theta_left = decompose_values(
            rng.integers(0, 1 << 20, size=theta_sizes[0]), device_bits=24
        )
        self.theta_right = decompose_values(
            rng.integers(0, 1 << 20, size=theta_sizes[1]), device_bits=24
        )
        self.theta_left_lg = decompose_values(
            rng.integers(0, 1 << 22, size=theta_large[0]), device_bits=24
        )
        self.theta_right_lg = decompose_values(
            rng.integers(0, 1 << 22, size=theta_large[1]), device_bits=24
        )
        self.theta_left_xl = decompose_values(
            rng.integers(0, 1 << 22, size=theta_xlarge[0]), device_bits=24
        )
        self.theta_right_xl = decompose_values(
            rng.integers(0, 1 << 22, size=theta_xlarge[1]), device_bits=24
        )
        # Distinct fact-side columns repeatedly joined against ONE dimension
        # side: the memoized sort-permutation amortization case.
        self.theta_repeat_lefts = [
            decompose_values(
                rng.integers(0, 1 << 20, size=theta_sizes[0]), device_bits=24
            )
            for _ in range(THETA_REPEAT_JOINS)
        ]
        for label, col in (
            ("thetaL", self.theta_left), ("thetaR", self.theta_right),
            ("thetaLlg", self.theta_left_lg), ("thetaRlg", self.theta_right_lg),
            ("thetaLxl", self.theta_left_xl), ("thetaRxl", self.theta_right_xl),
            *(
                (f"thetaLrep{i}", col)
                for i, col in enumerate(self.theta_repeat_lefts)
            ),
        ):
            self.machine.gpu.load_column(label, col, None)

        # A full engine session at the large theta size for the builder
        # path: count over a band join (the aggregate-only fast path).
        self.band = Session()
        self.band.create_table(
            "bandL", {"price": IntType()},
            {"price": rng.integers(0, 1 << 22, size=theta_large[0])},
        )
        self.band.create_table(
            "bandR", {"price": IntType()},
            {"price": rng.integers(0, 1 << 22, size=theta_large[1])},
        )
        self.band.bwdecompose("bandL", "price", 24)
        self.band.bwdecompose("bandR", "price", 24)

        self.tpch = build_tpch_session(TpchConfig(scale_factor=self.tpch_sf, seed=7))
        self.q6 = q6_sql()

        self._quick = quick
        self._serve: tuple | None = None
        self._shard: dict[int, tuple] = {}
        self._opt: Session | None = None
        self._ingest: tuple | None = None

    def opt_workload(self) -> Session:
        """Session for the opt.pick.* entries (PR 8), built lazily.

        A two-column fact table (both decomposed — the scan-order decision
        needs ≥ 2 drivable predicates) plus a small dimension side below
        the heuristic's sort cutoff (the optimizer's known win region).
        """
        if self._opt is None:
            rng = np.random.default_rng(29)
            n = max(self.n_rows // 5, 4_000)
            session = Session()
            session.create_table(
                "optL", {"v": IntType(), "w": IntType()},
                {
                    "v": rng.integers(0, 1 << 20, size=n),
                    "w": rng.integers(0, 1 << 20, size=n),
                },
            )
            session.create_table(
                "optR", {"v": IntType()},
                {"v": rng.integers(0, 1 << 20, size=OPT_THETA_RIGHT)},
            )
            session.bwdecompose("optL", "v", 24)
            session.bwdecompose("optL", "w", 24)
            session.bwdecompose("optR", "v", 24)
            self._opt = session
        return self._opt

    def serve_workload(self) -> tuple:
        """The serving session + query set, built lazily on first use.

        Lazy on purpose: the serve entries run *last* in the suite, and
        deferring their allocations keeps every earlier benchmark's heap
        shape identical to the pre-PR-5 suite — measured before/after
        points stay comparable (extra resident memory measurably slows
        unrelated allocation-heavy benchmarks in the same process).
        Warmed at the widest batch so the one-time shared structures
        (sorted-code view, sort permutation) are steady state, like a
        long-running server's.
        """
        if self._serve is None:
            n_serve = QUICK_SERVE_QUERIES if self._quick else SERVE_QUERIES
            session = build_serve_session(self.n_rows)
            ranges = query_ranges(self.n_rows, n_serve)
            run_once(session, ranges, max_batch=16)
            self._serve = (session, ranges)
        return self._serve

    def ingest_workload(self) -> tuple:
        """The streaming-ingestion session + cycled read panel (PR 9).

        Its own session, not :meth:`serve_workload`'s: the mixed runs
        append and compact, which would perturb the serve entries' state.
        Warmed through one delta round trip (append → served read →
        compact) so the delta-union machinery's one-time imports and the
        decoded-view caches are steady state before the first timed run.
        """
        if self._ingest is None:
            from repro.ingest.bench import (
                WRITE_EVERY, cycled_ranges, run_mixed,
            )

            n_queries = (
                QUICK_INGEST_QUERIES if self._quick else INGEST_QUERIES
            )
            session = build_serve_session(self.n_rows)
            ranges = cycled_ranges(self.n_rows, n_queries)
            session.append("events", {"value": np.array([0])})
            run_mixed(
                session, ranges[:WRITE_EVERY - 1], [],
                max_batch=16, delta_watermark=1 << 30,
            )
            session.compact("events")
            run_once(session, ranges, max_batch=16)
            self._ingest = (session, ranges)
        return self._ingest

    def shard_workload(self, n_shards: int) -> tuple:
        """A sharded session at ``n_shards`` + the narrow query set.

        Lazy per shard count, for the same heap-shape reason as
        :meth:`serve_workload` (the shard entries also run last).  Warmed
        once so memoized views and sort permutations are steady state.
        """
        if n_shards not in self._shard:
            from repro.shard.bench import (
                build_shard_session,
                run_scan_once,
                run_theta_once,
                scan_ranges,
            )

            n_queries = (
                QUICK_SHARD_QUERIES if self._quick else SHARD_QUERIES
            )
            session = build_shard_session(self.n_rows, n_shards)
            ranges = scan_ranges(self.n_rows, n_queries)
            run_scan_once(session, ranges)
            run_theta_once(session, ranges)
            self._shard[n_shards] = (session, ranges)
        return self._shard[n_shards]

    @classmethod
    def get(cls, quick: bool = False) -> "_Fixtures":
        if quick not in cls._instances:
            cls._instances[quick] = cls(quick)
        return cls._instances[quick]


# ----------------------------------------------------------------------
# The suite: name -> zero-argument callable
# ----------------------------------------------------------------------
def _run_selection(fx: _Fixtures) -> None:
    n = fx.n_rows
    select_approx(
        fx.machine.gpu, Timeline(), fx.columns[0], "c0",
        ValueRange.between(n // 10, n // 10 + n // 5),
    )


def _run_conjunction3(fx: _Fixtures) -> None:
    t = Timeline()
    n = fx.n_rows
    cand = select_approx(
        fx.machine.gpu, t, fx.columns[0], "c0",
        ValueRange.between(0, n // 2),
    )
    cand = select_approx_narrow(
        fx.machine.gpu, t, fx.columns[1], "c1",
        ValueRange.between(n // 4, 3 * n // 4), cand,
    )
    select_approx_narrow(
        fx.machine.gpu, t, fx.columns[2], "c2",
        ValueRange.between(n // 3, 2 * n // 3), cand,
    )


def _theta_cols(fx: _Fixtures, size: str):
    return {
        "base": (fx.theta_left, fx.theta_right),
        "large": (fx.theta_left_lg, fx.theta_right_lg),
        "xlarge": (fx.theta_left_xl, fx.theta_right_xl),
    }[size]


def _run_theta_band(
    fx: _Fixtures, strategy: str, size: str = "base", emit: str = "auto"
) -> None:
    left, right = _theta_cols(fx, size)
    theta_join_approx(
        fx.machine.gpu, Timeline(), left, right,
        Theta(ThetaOp.WITHIN, 64), strategy=strategy, emit=emit,
    )


def _run_theta_repeat(fx: _Fixtures) -> None:
    """Several fact columns joined against one dimension side back to back.

    The dimension side's sort permutation is memoized on the column
    (PR 3), so every join after the first skips the argsort — the
    repeated-join amortization the ROADMAP follow-on asked for.
    """
    theta = Theta(ThetaOp.WITHIN, 64)
    for left in fx.theta_repeat_lefts:
        theta_join_approx(
            fx.machine.gpu, Timeline(), left, fx.theta_right, theta,
            strategy="sorted",
        )


def _run_theta_pipeline_large(fx: _Fixtures) -> None:
    """Whole A&R join pipeline at the large size, run-length end to end:
    approx → ship (by count) → run-narrowing refine → the one materialize."""
    machine = fx.machine
    tl = Timeline()
    theta = Theta(ThetaOp.WITHIN, 64)
    pairs = theta_join_approx(
        machine.gpu, tl, fx.theta_left_lg, fx.theta_right_lg, theta,
        strategy="sorted", emit="runs",
    )
    ship_pairs(machine.bus, tl, pairs)
    refined = theta_join_refine(
        machine.cpu, tl, fx.theta_left_lg, fx.theta_right_lg, theta, pairs
    )
    refined.canonicalized()


def _run_theta_count_large(fx: _Fixtures) -> None:
    """``count(*)`` over the large band join via the builder, A&R mode.

    The aggregate-only fast path (PR 4): the refined run-length pair set
    feeds the count directly, so the benchmark *asserts* that no per-pair
    array is ever allocated — materialization during the run is a failure,
    not just a slowdown.
    """

    def _forbidden(self):
        raise AssertionError("count over a band join materialized its pairs")

    original = RunPairCandidates.materialized
    RunPairCandidates.materialized = _forbidden
    try:
        result = (
            fx.band.table("bandL")
            .band_join("bandR", on="price", delta=64, strategy="sorted")
            .count("n")
            .run(mode="ar")
        )
    finally:
        RunPairCandidates.materialized = original
    assert result.row_count == 1


def _run_tpch_q6(fx: _Fixtures) -> None:
    fx.tpch.execute(fx.q6, mode="ar")


def _run_opt_scan(fx: _Fixtures, optimizer: str) -> None:
    """Two-predicate selection through the (optionally cost-based) planner."""
    session = fx.opt_workload()
    (
        session.table("optL")
        .where("v", between=(100_000, 600_000))
        .where("w", between=(0, 200_000))
        .count("n")
        .run(mode="ar", optimizer=optimizer)
    )


def _run_opt_theta(fx: _Fixtures, optimizer: str) -> None:
    """Small-right theta join: the heuristic brute-forces it, the
    cost-based optimizer picks the sorted sweep off the estimates."""
    session = fx.opt_workload()
    (
        session.table("optL")
        .theta_join("optR", on="v", op="<")
        .count("n")
        .run(mode="ar", optimizer=optimizer)
    )


def _run_opt_batch(fx: _Fixtures, optimizer: str) -> None:
    """The serve workload with the cost gate deciding batch membership."""
    run_once(*fx.serve_workload(), max_batch=16, optimizer=optimizer)


def _run_ingest_mixed(
    fx: _Fixtures, watermark: int, strawman: bool
) -> None:
    """One 95/5 mixed round at batch 16, compactions landing mid-run.

    ``strawman`` is the ``before`` variant: a watermark of 1 row compacts
    after every batch that saw a write — the write-through design a delta
    store exists to avoid (every append pays a full re-decompose).  The
    ``after`` variant holds rows in the delta until ``watermark``.  Each
    round ends with an explicit compact so the next starts settled; that
    restore (and the view re-warm it forces) is part of the measured
    steady-state cost of both variants alike.
    """
    from repro.ingest.bench import WRITE_EVERY, run_mixed, write_batches

    session, ranges = fx.ingest_workload()
    batches = write_batches(
        fx.n_rows, len(ranges) // WRITE_EVERY, batch_rows=INGEST_WRITE_ROWS
    )
    run_mixed(
        session, ranges, batches, max_batch=16, max_in_flight=16,
        delta_watermark=1 if strawman else watermark,
    )
    session.compact("events")


def _run_obs_overhead(fx: _Fixtures, traced: bool) -> None:
    """The b16 serve workload with tracing off vs a live Tracer attached.

    Both variants are recorded as their own entries (identical under either
    ``opt_baseline`` flag), so the pairwise-interleaved points land seconds
    apart and ``after[obs.overhead.on] / after[obs.overhead.off]`` is the
    measured cost of full span capture on this machine.  PR 10's acceptance
    bar: ``on`` must stay within 0.95x of ``off``.
    """
    from repro.obs.trace import Tracer

    session, ranges = fx.serve_workload()
    saved = session.tracer
    session.attach_tracer(Tracer() if traced else None)
    try:
        run_once(session, ranges, max_batch=16)
    finally:
        session.attach_tracer(saved)


def _run_shard_scan(fx: _Fixtures, n_shards: int) -> None:
    from repro.shard.bench import run_scan_once

    run_scan_once(*fx.shard_workload(n_shards))


def _run_shard_theta(fx: _Fixtures, n_shards: int) -> None:
    from repro.shard.bench import run_theta_once

    run_theta_once(*fx.shard_workload(n_shards))


def build_suite(quick: bool = False, opt_baseline: bool = False) -> dict:
    """The named benchmark suite.

    ``opt_baseline=True`` swaps the ``opt.pick.*`` entries onto the
    pre-PR-8 heuristic path — the ``before`` variant of the interleaved
    recording (every other entry is identical under either flag: the
    optimizer is opt-in and the default paths are untouched).
    """
    fx = _Fixtures.get(quick)
    n = fx.n_rows
    opt = "heuristic" if opt_baseline else "cost"
    return {
        "micro.pack.w8": lambda: pack_codes(fx.codes8, 8),
        "micro.pack.w12": lambda: pack_codes(fx.codes12, 12),
        "micro.unpack.w8": lambda: unpack_codes(fx.packed8, 8, n),
        "micro.unpack.w12": lambda: unpack_codes(fx.packed12, 12, n),
        "micro.gather.w12": lambda: gather_codes(
            fx.packed12, 12, n, fx.positions
        ),
        "scan.selection": lambda: _run_selection(fx),
        "scan.conjunction3": lambda: _run_conjunction3(fx),
        "join.theta.band": lambda: _run_theta_band(fx, "auto"),
        "join.theta.band.bruteforce": lambda: _run_theta_band(fx, "bruteforce"),
        "join.theta.band.large": lambda: _run_theta_band(fx, "sorted", size="large"),
        "join.theta.band.large.materialize": lambda: _run_theta_band(
            fx, "sorted", size="large", emit="pairs"
        ),
        "join.theta.band.xlarge": lambda: _run_theta_band(
            fx, "sorted", size="xlarge", emit="runs"
        ),
        "join.theta.band.repeat": lambda: _run_theta_repeat(fx),
        "join.theta.count.large": lambda: _run_theta_count_large(fx),
        "join.theta.pipeline.large": lambda: _run_theta_pipeline_large(fx),
        "tpch.q6.ar": lambda: _run_tpch_q6(fx),
        # Deliberately last + lazily built: see _Fixtures.serve_workload.
        "serve.throughput.b1": lambda: run_once(*fx.serve_workload(), max_batch=1),
        "serve.throughput.b4": lambda: run_once(*fx.serve_workload(), max_batch=4),
        "serve.throughput.b16": lambda: run_once(*fx.serve_workload(), max_batch=16),
        # Sharded scale-out (PR 6): narrow windows over the range-partitioned
        # column, so pruning routes each query to ~1 shard and sN scans ~1/N
        # of the rows per query.  s4/s1 is the real scale-out speedup.
        "shard.scan.s1": lambda: _run_shard_scan(fx, 1),
        "shard.scan.s2": lambda: _run_shard_scan(fx, 2),
        "shard.scan.s4": lambda: _run_shard_scan(fx, 4),
        "shard.theta.s1": lambda: _run_shard_theta(fx, 1),
        "shard.theta.s4": lambda: _run_shard_theta(fx, 4),
        # Cost-based optimizer picks (PR 8): before = heuristic path,
        # after = optimizer="cost", so the recorded speedup IS the
        # optimizer's end-to-end win (or its planning overhead).
        "opt.pick.scan": lambda: _run_opt_scan(fx, opt),
        "opt.pick.theta": lambda: _run_opt_theta(fx, opt),
        "opt.pick.batch": lambda: _run_opt_batch(fx, opt),
        # Streaming ingestion (PR 9): before = write-through strawman
        # (compact on every write), after = delta held to the watermark.
        "ingest.mixed.wm1k": lambda: _run_ingest_mixed(
            fx, 1_000, strawman=opt_baseline
        ),
        "ingest.mixed.wm10k": lambda: _run_ingest_mixed(
            fx, 10_000, strawman=opt_baseline
        ),
        # Observability overhead (PR 10): same serve workload untraced vs
        # with a Tracer attached; on/off is the measured span-capture cost.
        "obs.overhead.off": lambda: _run_obs_overhead(fx, traced=False),
        "obs.overhead.on": lambda: _run_obs_overhead(fx, traced=True),
    }


# ----------------------------------------------------------------------
# pytest-benchmark smoke target (full sizes; explicit invocation only)
# ----------------------------------------------------------------------
def pytest_generate_tests(metafunc):
    if "bench_name" in metafunc.fixturenames:
        metafunc.parametrize("bench_name", sorted(build_suite()))


def test_wallclock(benchmark, bench_name):
    benchmark.pedantic(build_suite()[bench_name], rounds=3, iterations=1)


# ----------------------------------------------------------------------
# Trajectory recorder
# ----------------------------------------------------------------------
def record_interleaved(
    reps: int, out: Path = _RESULT_FILE, only: list[str] | None = None
) -> None:
    """Record ``before`` and ``after`` points pairwise-interleaved.

    For every benchmark, the ``before`` variant (heuristic ``opt.pick.*``;
    identical code for everything else) and the ``after`` variant run
    back to back, alternating per rep — both points of each benchmark are
    taken seconds apart on an identically-warmed process, the recording
    convention the trajectory files promise.
    """
    before_suite = build_suite(opt_baseline=True)
    after_suite = build_suite(opt_baseline=False)
    names = sorted(before_suite)
    if only:
        unknown = sorted(set(only) - set(names))
        if unknown:
            raise SystemExit(f"--only: unknown benchmark(s) {', '.join(unknown)}")
        names = [n for n in names if n in only]
    before: dict[str, float] = {}
    after: dict[str, float] = {}
    for name in names:
        b_fn, a_fn = before_suite[name], after_suite[name]
        b_fn(); a_fn()  # warm both variants (lazy fixtures, memoized views)
        b_best = a_best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            b_fn()
            b_best = min(b_best, time.perf_counter() - t0)
            t0 = time.perf_counter()
            a_fn()
            a_best = min(a_best, time.perf_counter() - t0)
        before[name], after[name] = b_best, a_best
        print(
            f"{name:34s} before {b_best * 1e3:9.2f} ms   "
            f"after {a_best * 1e3:9.2f} ms"
        )
    data = {}
    if out.exists():
        data = json.loads(out.read_text())
    data.setdefault("meta", {})
    data["meta"].update({"n_rows": N_ROWS, "tpch_sf": TPCH_SF, "reps": reps})
    data.setdefault("before", {}).update(before)
    data.setdefault("after", {}).update(after)
    data["speedup"] = {
        k: round(data["before"][k] / data["after"][k], 2)
        for k in data["after"]
        if k in data["before"] and data["after"][k] > 0
    }
    out.write_text(json.dumps(data, indent=1, sort_keys=True) + "\n")
    print(f"recorded interleaved before/after into {out}")


def measure(
    reps: int, quick: bool = False, only: list[str] | None = None
) -> dict[str, float]:
    suite = build_suite(quick)
    if only:
        unknown = sorted(set(only) - set(suite))
        if unknown:
            raise SystemExit(
                f"--only: unknown benchmark(s) {', '.join(unknown)}; "
                f"known: {', '.join(sorted(suite))}"
            )
        suite = {k: suite[k] for k in suite if k in only}
    results: dict[str, float] = {}
    for name, fn in suite.items():
        fn()  # warmup (also builds any lazy caches, as a real workload would)
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        results[name] = best
        print(f"{name:34s} {best * 1e3:10.2f} ms")
    return results


def _after_point(path: Path) -> dict[str, float]:
    """The measured-code record of a trajectory file.

    Prefers the ``after`` label (each PR file's own code); a file holding a
    single other label falls back to that one.
    """
    data = json.loads(Path(path).read_text())
    if "after" in data:
        return data["after"]
    labels = [k for k in data if k not in ("meta", "speedup")]
    if len(labels) == 1:
        return data[labels[0]]
    raise SystemExit(
        f"{path}: no 'after' record (labels present: {sorted(labels)})"
    )


def compare(
    before_path: Path,
    after_path: Path | None = None,
    threshold: float = REGRESSION_THRESHOLD,
) -> int:
    """Per-benchmark speedup table; the wall-clock regression gate.

    Two files: compare their ``after`` points (same-machine recordings
    only — wall-clock milliseconds do not transfer across hosts).  One
    file: compare its own ``before`` → ``after`` points, which the
    recording convention keeps machine-consistent (each PR re-measures
    ``before`` from the prior code on the recording machine).

    Returns a nonzero exit status when any benchmark present in *both*
    points regressed below ``threshold`` (after runs slower than before by
    more than the allowed factor) — so CI or a reviewer can gate on
    ``--compare`` and trajectory files stay machine-checkable rather than
    prose.  Benchmarks only one point knows are listed but never gate.
    """
    if after_path is None:
        data = json.loads(Path(before_path).read_text())
        for label in ("before", "after"):
            if label not in data:
                raise SystemExit(f"{before_path}: no {label!r} record to gate")
        before, after = data["before"], data["after"]
    else:
        before = _after_point(before_path)
        after = _after_point(after_path)
    shared = sorted(set(before) & set(after))
    regressions = []
    print(f"{'benchmark':34s} {'before':>11s} {'after':>11s} {'speedup':>8s}")
    for name in shared:
        speedup = before[name] / after[name] if after[name] > 0 else float("inf")
        flag = ""
        if speedup < threshold:
            regressions.append(name)
            flag = "  << REGRESSION"
        print(
            f"{name:34s} {before[name] * 1e3:9.2f}ms {after[name] * 1e3:9.2f}ms"
            f" {speedup:7.2f}x{flag}"
        )
    for name in sorted(set(after) - set(before)):
        print(f"{name:34s} {'—':>11s} {after[name] * 1e3:9.2f}ms      new")
    for name in sorted(set(before) - set(after)):
        print(f"{name:34s} {before[name] * 1e3:9.2f}ms {'—':>11s}  dropped")
    if regressions:
        print(
            f"FAIL: {len(regressions)} benchmark(s) regressed below "
            f"{threshold}x: {', '.join(regressions)}"
        )
        return 1
    print(f"ok: no shared benchmark below {threshold}x")
    return 0


def record(
    label: str,
    reps: int,
    out: Path = _RESULT_FILE,
    only: list[str] | None = None,
) -> None:
    """Measure (a subset of) the suite and merge under ``label`` in ``out``.

    With ``--only``, existing measurements under the label are kept and
    the named benchmarks are updated in place — the mechanism behind the
    pairwise-interleaved recording convention (PR 5): each benchmark's
    ``before`` and ``after`` points are taken seconds apart by alternating
    single-benchmark recordings from the two checkouts.
    """
    data = {}
    if out.exists():
        data = json.loads(out.read_text())
    data.setdefault("meta", {})
    data["meta"].update({"n_rows": N_ROWS, "tpch_sf": TPCH_SF, "reps": reps})
    data.setdefault(label, {}).update(measure(reps, only=only))
    if "before" in data and "after" in data:
        data["speedup"] = {
            k: round(data["before"][k] / data["after"][k], 2)
            for k in data["after"]
            if k in data["before"] and data["after"][k] > 0
        }
    out.write_text(json.dumps(data, indent=1, sort_keys=True) + "\n")
    print(f"recorded {label!r} into {out}")


if __name__ == "__main__":
    import sys

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="after", help="before | after | <tag>")
    parser.add_argument("--reps", type=int, default=5)
    parser.add_argument("--out", type=Path, default=_RESULT_FILE)
    parser.add_argument(
        "--quick", action="store_true",
        help="small inputs, one rep, print only (smoke mode; records nothing)",
    )
    parser.add_argument(
        "--compare", nargs="+", type=Path, metavar="FILE",
        help="gate on regressions: one trajectory file (its before->after) "
        "or two files (their after points); exits nonzero on regressions",
    )
    parser.add_argument(
        "--threshold", type=float, default=REGRESSION_THRESHOLD,
        help="--compare regression gate: flag speedups below this factor",
    )
    parser.add_argument(
        "--only", action="append", metavar="NAME",
        help="record/measure only this benchmark (repeatable); recordings "
        "merge into the label instead of replacing it",
    )
    parser.add_argument(
        "--interleaved", action="store_true",
        help="record before and after points pairwise-interleaved in one "
        "process (before = heuristic opt.pick.* variants)",
    )
    args = parser.parse_args()
    if args.compare:
        if len(args.compare) > 2:
            parser.error("--compare takes one or two trajectory files")
        sys.exit(
            compare(
                args.compare[0],
                args.compare[1] if len(args.compare) == 2 else None,
                args.threshold,
            )
        )
    elif args.interleaved:
        record_interleaved(args.reps, args.out, only=args.only)
    elif args.quick:
        measure(reps=1, quick=True, only=args.only)
    else:
        record(args.label, args.reps, args.out, only=args.only)
