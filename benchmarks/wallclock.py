"""Wall-clock benchmark suite for the zero-unpack kernel layer (PR 1).

Measures *real* elapsed seconds — not modeled Timeline seconds — of the
hot paths the zero-unpack refactor targets: bit-(un)packing, the relaxed
selection scan, a three-predicate conjunction, a band theta join and a
TPC-H Q6-shaped A&R run at ≥ 1M lineitem rows.

Two entry points:

* **Smoke target** (pytest-benchmark)::

      PYTHONPATH=src python -m pytest benchmarks/wallclock.py -q

  The file name deliberately does not match ``test_*.py`` so the suite is
  *not* collected by the default tier-1 run — it is an explicit target.

* **Trajectory recorder** (plain script)::

      PYTHONPATH=src python benchmarks/wallclock.py --label after

  Times every benchmark (best of ``--reps``) and merges the results into
  ``BENCH_PR1.json`` at the repo root under the given label.  When both
  ``before`` and ``after`` labels are present, per-benchmark speedups are
  (re)computed, giving future PRs a wall-clock perf trajectory.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.approximate import select_approx, select_approx_narrow
from repro.core.relax import ValueRange
from repro.core.theta import Theta, ThetaOp, theta_join_approx
from repro.device.machine import Machine
from repro.device.timeline import Timeline
from repro.storage.bitpack import gather_codes, pack_codes, unpack_codes
from repro.storage.decompose import decompose_values
from repro.workloads.microbench import unique_shuffled_ints
from repro.workloads.tpch import TpchConfig, build_tpch_session, q6_sql

#: Rows for the micro / scan benchmarks (acceptance floor: 1M).
N_ROWS = int(os.environ.get("REPRO_WALLCLOCK_N", 1_000_000))

#: TPC-H scale factor; 0.17 ≈ 1.02M lineitem rows (acceptance floor: 1M).
TPCH_SF = float(os.environ.get("REPRO_WALLCLOCK_SF", 0.17))

_RESULT_FILE = Path(__file__).resolve().parent.parent / "BENCH_PR1.json"


# ----------------------------------------------------------------------
# Fixtures (built once, outside the timed region)
# ----------------------------------------------------------------------
class _Fixtures:
    """Lazily-built shared inputs; construction is never timed."""

    _instance: "_Fixtures | None" = None

    def __init__(self) -> None:
        rng = np.random.default_rng(42)
        self.codes12 = rng.integers(0, 1 << 12, size=N_ROWS, dtype=np.uint64)
        self.codes8 = rng.integers(0, 1 << 8, size=N_ROWS, dtype=np.uint64)
        self.packed8 = pack_codes(self.codes8, 8)
        self.packed12 = pack_codes(self.codes12, 12)
        self.positions = rng.integers(0, N_ROWS, size=N_ROWS // 8, dtype=np.int64)

        self.machine = Machine.paper_testbed()
        self.columns = []
        for i in range(3):
            col = decompose_values(unique_shuffled_ints(N_ROWS, seed=i), device_bits=24)
            self.machine.gpu.load_column(f"c{i}", col, None)
            self.columns.append(col)

        self.theta_left = decompose_values(
            rng.integers(0, 1 << 20, size=20_000), device_bits=24
        )
        self.theta_right = decompose_values(
            rng.integers(0, 1 << 20, size=5_000), device_bits=24
        )
        self.machine.gpu.load_column("thetaL", self.theta_left, None)
        self.machine.gpu.load_column("thetaR", self.theta_right, None)

        self.tpch = build_tpch_session(TpchConfig(scale_factor=TPCH_SF, seed=7))
        self.q6 = q6_sql()

    @classmethod
    def get(cls) -> "_Fixtures":
        if cls._instance is None:
            cls._instance = cls()
        return cls._instance


# ----------------------------------------------------------------------
# The suite: name -> zero-argument callable
# ----------------------------------------------------------------------
def _run_selection(fx: _Fixtures) -> None:
    select_approx(
        fx.machine.gpu, Timeline(), fx.columns[0], "c0",
        ValueRange.between(N_ROWS // 10, N_ROWS // 10 + N_ROWS // 5),
    )


def _run_conjunction3(fx: _Fixtures) -> None:
    t = Timeline()
    cand = select_approx(
        fx.machine.gpu, t, fx.columns[0], "c0",
        ValueRange.between(0, N_ROWS // 2),
    )
    cand = select_approx_narrow(
        fx.machine.gpu, t, fx.columns[1], "c1",
        ValueRange.between(N_ROWS // 4, 3 * N_ROWS // 4), cand,
    )
    select_approx_narrow(
        fx.machine.gpu, t, fx.columns[2], "c2",
        ValueRange.between(N_ROWS // 3, 2 * N_ROWS // 3), cand,
    )


def _run_theta_band(fx: _Fixtures) -> None:
    theta_join_approx(
        fx.machine.gpu, Timeline(), fx.theta_left, fx.theta_right,
        Theta(ThetaOp.WITHIN, 64),
    )


def _run_tpch_q6(fx: _Fixtures) -> None:
    fx.tpch.execute(fx.q6, mode="ar")


def build_suite() -> dict:
    fx = _Fixtures.get()
    return {
        "micro.pack.w8": lambda: pack_codes(fx.codes8, 8),
        "micro.pack.w12": lambda: pack_codes(fx.codes12, 12),
        "micro.unpack.w8": lambda: unpack_codes(fx.packed8, 8, N_ROWS),
        "micro.unpack.w12": lambda: unpack_codes(fx.packed12, 12, N_ROWS),
        "micro.gather.w12": lambda: gather_codes(
            fx.packed12, 12, N_ROWS, fx.positions
        ),
        "scan.selection": lambda: _run_selection(fx),
        "scan.conjunction3": lambda: _run_conjunction3(fx),
        "join.theta.band": lambda: _run_theta_band(fx),
        "tpch.q6.ar": lambda: _run_tpch_q6(fx),
    }


# ----------------------------------------------------------------------
# pytest-benchmark smoke target
# ----------------------------------------------------------------------
def pytest_generate_tests(metafunc):
    if "bench_name" in metafunc.fixturenames:
        metafunc.parametrize("bench_name", sorted(build_suite()))


def test_wallclock(benchmark, bench_name):
    benchmark.pedantic(build_suite()[bench_name], rounds=3, iterations=1)


# ----------------------------------------------------------------------
# Trajectory recorder
# ----------------------------------------------------------------------
def measure(reps: int) -> dict[str, float]:
    suite = build_suite()
    results: dict[str, float] = {}
    for name, fn in suite.items():
        fn()  # warmup (also builds any lazy caches, as a real workload would)
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        results[name] = best
        print(f"{name:24s} {best * 1e3:10.2f} ms")
    return results


def record(label: str, reps: int) -> None:
    data = {}
    if _RESULT_FILE.exists():
        data = json.loads(_RESULT_FILE.read_text())
    data.setdefault("meta", {})
    data["meta"].update({"n_rows": N_ROWS, "tpch_sf": TPCH_SF, "reps": reps})
    data[label] = measure(reps)
    if "before" in data and "after" in data:
        data["speedup"] = {
            k: round(data["before"][k] / data["after"][k], 2)
            for k in data["after"]
            if k in data["before"] and data["after"][k] > 0
        }
    _RESULT_FILE.write_text(json.dumps(data, indent=1, sort_keys=True) + "\n")
    print(f"recorded {label!r} into {_RESULT_FILE}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="after", help="before | after | <tag>")
    parser.add_argument("--reps", type=int, default=5)
    args = parser.parse_args()
    record(args.label, args.reps)
