"""Fig 10a/b/c: the TPC-H queries (paper §VI-D, SF-10).

Paper numbers (seconds, A&R / space-constrained / MonetDB / stream):

* Q1  — 6.373 / 9.507 / 16.666 / 0.254  (≈2.6× over MonetDB; destructive
  distributivity limits the speedup; streaming is *faster* than A&R here)
* Q6  — 0.123 / 0.265 / 1.719 / 0.226  (>6× GPU-only; decomposing
  l_shipdate costs extra refinement)
* Q14 — 0.112 / 0.341 / 0.565 / 0.230  (selection + FK join win, the
  final aggregation suffers destructive distributivity)
"""

import pytest
from conftest import show

from repro.bench.figures import fig10_tpch
from repro.workloads.tpch import TpchConfig


@pytest.fixture(scope="module")
def config(request):
    import os

    return TpchConfig(scale_factor=float(os.environ.get("REPRO_BENCH_SF", 0.01)))


def test_fig10a_tpch_q1(benchmark, config):
    exp = benchmark(fig10_tpch, "q1", config)
    show(exp)
    ar = exp.get("A & R").points[0]
    sc = exp.get("A & R Space Constraint").points[0]
    monetdb = exp.get("MonetDB").points[0]
    stream = exp.get("Stream (Hypothetical)").points[0]

    # ~3× win, limited by destructive distributivity (§VI-D2).
    assert 1.5 <= monetdb.seconds / ar.seconds <= 5.0
    # The space-constrained variant pays extra refinement.
    assert ar.seconds < sc.seconds < monetdb.seconds
    # Q1's anomaly: the input is small but heavily processed, so merely
    # streaming it would be *faster* than the A&R processing (§VI-D2).
    assert stream.seconds < ar.seconds
    assert "True" in exp.notes  # engines agree on exact answers


def test_fig10b_tpch_q6(benchmark, config):
    exp = benchmark(fig10_tpch, "q6", config)
    show(exp)
    ar = exp.get("A & R").points[0]
    sc = exp.get("A & R Space Constraint").points[0]
    monetdb = exp.get("MonetDB").points[0]
    stream = exp.get("Stream (Hypothetical)").points[0]

    # The all-GPU case clearly outperforms the CPU (paper: >6×; our
    # calibrated model lands lower but decisively on the same side).
    assert monetdb.seconds / ar.seconds >= 3.0
    # Decomposing l_shipdate costs extra (paper: ~2.2× the GPU-only time).
    assert 1.2 <= sc.seconds / ar.seconds <= 3.0
    # Even the constrained variant beats MonetDB by a wide margin (§VI-D2).
    assert monetdb.seconds / sc.seconds >= 2.0
    # A&R beats even the hypothetical streaming lower bound.
    assert ar.seconds < stream.seconds
    assert "True" in exp.notes


def test_fig10c_tpch_q14(benchmark, config):
    exp = benchmark(fig10_tpch, "q14", config)
    show(exp)
    ar = exp.get("A & R").points[0]
    sc = exp.get("A & R Space Constraint").points[0]
    monetdb = exp.get("MonetDB").points[0]
    stream = exp.get("Stream (Hypothetical)").points[0]

    assert 1.5 <= monetdb.seconds / ar.seconds <= 8.0
    assert ar.seconds < sc.seconds
    # Lower selectivity than Q1 → the reduced resolution has a larger
    # impact (§VI-D2): the constrained gap is wider for Q14 than for Q1.
    assert ar.seconds < stream.seconds
    assert "True" in exp.notes
