"""Mini-grid sweep validating the PR-8 cost-based optimizer (repro.opt).

Each cell of the grid — selection **selectivity** × left-value **skew**
(uniform / zipf) × **right-side cardinality ratio** |R|/|L| — times, on
the simulation host, every forced theta physical alternative
(``bruteforce+pairs``, ``sorted+pairs``, ``sorted+runs``), the old
heuristic pick (``strategy="auto"``), and the cost-based optimizer's pick
(``optimizer="cost"``), asserting along the way that every variant
returns the identical answer.  The summary grades the optimizer the way
the acceptance criteria are phrased:

* ``match_rate`` — fraction of cells where the optimizer's wall-clock is
  within ``MATCH_TOLERANCE`` of the empirically fastest forced strategy
  (criterion: ≥ 0.80);
* ``worst_ratio`` — the optimizer's worst cell relative to the fastest
  forced strategy (criterion: ≤ 1.5);
* ``best_gain_over_heuristic`` — the optimizer's best cell relative to
  the old heuristic (criterion: ≥ 1.2× somewhere in the grid).

Entry points::

    PYTHONPATH=src python benchmarks/sweep.py --quick          # smoke shape
    PYTHONPATH=src python benchmarks/sweep.py --out SWEEP_PR8.json
    PYTHONPATH=src python benchmarks/sweep.py --markdown SWEEP_PR8.json

``--quick`` is what ``tests/bench/test_sweep_smoke.py`` runs under tier-1,
so the harness cannot rot between perf PRs.  The markdown reporter renders
a recorded JSON as a per-cell table plus the graded summary.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.engine.session import Session
from repro.opt.planner import choose_theta
from repro.storage.column import IntType

#: Value domain of both join sides (24-bit decompositions → 8-bit residual).
VALUE_BITS = 20
DEVICE_BITS = 24

#: Full grid: 2 selectivities × 2 skews × 3 ratios = 12 cells.  Sized so
#: the forced brute-force oracle stays tractable in every cell (the
#: largest is |L|·|R| = 4×10⁷ interval comparisons).
N_LEFT = 20_000
SELECTIVITIES = (0.1, 0.6)
SKEWS = ("uniform", "zipf")
#: |R|/|L| ratios; the smallest lands |R| under the heuristic's sort
#: cutoff (_SORT_MIN_RIGHT), the optimizer's known win region.
RIGHT_RATIOS = (0.001, 0.01, 0.1)
REPS = 3

#: --quick shape (tier-1 smoke): 1 × 2 × 2 = 4 cells, one rep.
QUICK_N_LEFT = 6_000
QUICK_SELECTIVITIES = (0.5,)
QUICK_RIGHT_RATIOS = (0.003, 0.1)
QUICK_REPS = 1

#: The forced physical alternatives every cell times.
FORCED = (
    ("bruteforce", "pairs"),
    ("sorted", "pairs"),
    ("sorted", "runs"),
)

#: A pick within this factor of the fastest forced strategy "matches" it
#: (sub-millisecond timings jitter; exact argmin equality would be noise).
MATCH_TOLERANCE = 1.15

_RESULT_FILE = Path(__file__).resolve().parent.parent / "SWEEP_PR8.json"


# ----------------------------------------------------------------------
# Cell construction
# ----------------------------------------------------------------------
def _left_values(n: int, skew: str, rng) -> np.ndarray:
    domain = 1 << VALUE_BITS
    if skew == "uniform":
        return rng.integers(0, domain, size=n)
    if skew == "zipf":
        # Heavy-tailed toward small values; clamp into the domain so the
        # decomposition shape matches the uniform cells.
        return np.minimum(rng.zipf(1.3, size=n), domain - 1)
    raise ValueError(f"unknown skew {skew!r}")


def build_cell_session(n_left: int, n_right: int, skew: str, seed: int = 17):
    """One Session holding the cell's decomposed left/right tables."""
    rng = np.random.default_rng(seed)
    session = Session()
    session.create_table(
        "L", {"v": IntType()}, {"v": _left_values(n_left, skew, rng)}
    )
    session.create_table(
        "R", {"v": IntType()},
        {"v": rng.integers(0, 1 << VALUE_BITS, size=n_right)},
    )
    session.bwdecompose("L", "v", DEVICE_BITS)
    session.bwdecompose("R", "v", DEVICE_BITS)
    return session


def _cell_builder(session, selectivity: float):
    hi = int(selectivity * (1 << VALUE_BITS))
    return (
        session.table("L")
        .where("v", between=(0, hi))
        .theta_join("R", on="v", op="<")
        .count("n")
    )


def _time_best(fn, reps: int) -> float:
    fn()  # warmup (memoized sort permutations / views reach steady state)
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# ----------------------------------------------------------------------
# The sweep
# ----------------------------------------------------------------------
def run_cell(
    n_left: int, selectivity: float, skew: str, ratio: float, reps: int
) -> dict:
    n_right = max(2, int(round(n_left * ratio)))
    session = build_cell_session(n_left, n_right, skew)
    base = _cell_builder(session, selectivity)

    answers = {}
    timings: dict[str, float] = {}
    for strategy, emit in FORCED:
        builder = (
            session.table("L")
            .where("v", between=(0, int(selectivity * (1 << VALUE_BITS))))
            .theta_join("R", on="v", op="<", strategy=strategy, emit=emit)
            .count("n")
        )
        label = f"{strategy}+{emit}"
        timings[label] = _time_best(
            lambda b=builder: b.run(mode="ar", optimizer="heuristic"), reps
        )
        answers[label] = (
            builder.run(mode="ar", optimizer="heuristic").scalar("n")
        )
    timings["heuristic"] = _time_best(
        lambda: base.run(mode="ar", optimizer="heuristic"), reps
    )
    answers["heuristic"] = (
        base.run(mode="ar", optimizer="heuristic").scalar("n")
    )
    timings["optimizer"] = _time_best(
        lambda: base.run(mode="ar", optimizer="cost"), reps
    )
    answers["optimizer"] = base.run(mode="ar", optimizer="cost").scalar("n")

    # PR 10: the session plan cache makes ``optimizer="cost"`` (now the
    # solo default via ``"auto"``) pay its planning latency once per
    # (query, options, epoch).  Record what the cache recovers: a fresh
    # cost rewrite vs the epoch-keyed cached lookup.
    from repro.plan.rewriter import rewrite_to_ar_plan

    query = base.build()
    t0 = time.perf_counter()
    for _ in range(max(reps, 1)):
        rewrite_to_ar_plan(
            query, session.catalog, pushdown=True,
            predicate_order="query", optimizer="cost",
        )
    plan_uncached = (time.perf_counter() - t0) / max(reps, 1)
    session.plan_for(query, optimizer="cost")  # warm the cache entry
    t0 = time.perf_counter()
    for _ in range(max(reps, 1)):
        session.plan_for(query, optimizer="cost")
    plan_cached = (time.perf_counter() - t0) / max(reps, 1)

    distinct = set(answers.values())
    if len(distinct) != 1:
        raise AssertionError(
            f"cell sel={selectivity} skew={skew} ratio={ratio}: "
            f"variants disagree: {answers}"
        )

    _, decision = choose_theta(base.build(), session.catalog)
    forced_labels = [f"{s}+{e}" for s, e in FORCED]
    fastest_label = min(forced_labels, key=lambda label: timings[label])
    fastest = timings[fastest_label]
    # Plan quality: how the *chosen strategy's* execution compares against
    # the empirically fastest alternative.  Planning latency is reported
    # separately (optimizer end-to-end minus the chosen plan's execution):
    # a fixed ~0.4 ms that matters on sub-millisecond queries and
    # amortizes away at paper sizes.
    pick = timings[decision.chosen]
    end_to_end = timings["optimizer"]
    return {
        "n_left": n_left,
        "n_right": n_right,
        "selectivity": selectivity,
        "skew": skew,
        "right_ratio": ratio,
        "timings_ms": {k: round(v * 1e3, 4) for k, v in timings.items()},
        "chosen": decision.chosen,
        "fastest_forced": fastest_label,
        "pick_vs_fastest": round(pick / fastest, 3) if fastest > 0 else 1.0,
        "planning_overhead_ms": round((end_to_end - pick) * 1e3, 4),
        "plan_ms_uncached": round(plan_uncached * 1e3, 4),
        "plan_ms_cached": round(plan_cached * 1e3, 4),
        "plan_ms_recovered": round((plan_uncached - plan_cached) * 1e3, 4),
        "match": (
            decision.chosen == fastest_label
            or pick <= MATCH_TOLERANCE * fastest
        ),
        "heuristic_gain": (
            round(timings["heuristic"] / end_to_end, 3)
            if end_to_end > 0 else 1.0
        ),
        "answer": int(distinct.pop()),
    }


def sweep(quick: bool = False, reps: int | None = None) -> dict:
    n_left = QUICK_N_LEFT if quick else N_LEFT
    sels = QUICK_SELECTIVITIES if quick else SELECTIVITIES
    ratios = QUICK_RIGHT_RATIOS if quick else RIGHT_RATIOS
    if reps is None:
        reps = QUICK_REPS if quick else REPS
    cells = []
    for selectivity in sels:
        for skew in SKEWS:
            for ratio in ratios:
                cell = run_cell(n_left, selectivity, skew, ratio, reps)
                cells.append(cell)
                print(
                    f"sel={selectivity:<4} skew={skew:<7} |R|={cell['n_right']:<6} "
                    f"pick={cell['chosen']:<16} fastest={cell['fastest_forced']:<16} "
                    f"x{cell['pick_vs_fastest']:<5} gain={cell['heuristic_gain']}x"
                )
    matches = sum(c["match"] for c in cells)
    summary = {
        "cells": len(cells),
        "match_rate": round(matches / len(cells), 3),
        "worst_ratio": max(c["pick_vs_fastest"] for c in cells),
        "best_gain_over_heuristic": max(c["heuristic_gain"] for c in cells),
        "mean_plan_ms_recovered": round(
            sum(c["plan_ms_recovered"] for c in cells) / len(cells), 4
        ),
    }
    print(
        f"summary: match_rate={summary['match_rate']} "
        f"worst_ratio={summary['worst_ratio']} "
        f"best_gain={summary['best_gain_over_heuristic']}x"
    )
    return {
        "meta": {"n_left": n_left, "reps": reps, "quick": quick},
        "cells": cells,
        "summary": summary,
    }


# ----------------------------------------------------------------------
# Host-spec calibration (PR 9): fit SIM_HOST to a recorded grid
# ----------------------------------------------------------------------
#: Fit parameters, in design-matrix column order: fixed per-charge launch,
#: sequential byte cost, then one per-tuple cost per OpClass.
_FIT_CLASSES = ("SCAN", "ARITH", "GATHER", "HASH", "AGG")


def _basis_specs():
    """One DeviceSpec per fit parameter: that constant 1, the rest ~0.

    Costing an alternative under a basis spec makes ``est_seconds`` read
    out the alternative's feature count for that parameter (number of
    charges, total bytes, or total tuples of one OpClass).
    """
    from types import MappingProxyType

    from repro.device.model import DeviceSpec, OpClass

    def spec(launch=0.0, bandwidth=1e30, per_tuple=None):
        return DeviceSpec(
            name="calibration-basis", kind="cpu", memory_capacity=None,
            seq_bandwidth=bandwidth, random_bandwidth=bandwidth,
            launch_overhead=launch,
            per_tuple=MappingProxyType(per_tuple or {}),
        )

    yield "launch_overhead", spec(launch=1.0)
    yield "byte_cost", spec(bandwidth=1.0)
    for name in _FIT_CLASSES:
        yield f"per_tuple.{name}", spec(per_tuple={OpClass[name]: 1.0})


def _fitted_spec(theta: np.ndarray):
    from types import MappingProxyType

    from repro.device.model import DeviceSpec, OpClass

    byte_cost = float(theta[1])
    return DeviceSpec(
        name="sim-host-calibrated", kind="cpu", memory_capacity=None,
        seq_bandwidth=(1.0 / byte_cost) if byte_cost > 1e-30 else 1e30,
        random_bandwidth=(1.0 / byte_cost) if byte_cost > 1e-30 else 1e30,
        launch_overhead=float(theta[0]),
        per_tuple=MappingProxyType({
            OpClass[name]: float(t)
            for name, t in zip(_FIT_CLASSES, theta[2:])
        }),
    )


def calibrate(data: dict) -> dict:
    """Fit the SIM_HOST DeviceSpec to a recorded sweep's wall-clock grid.

    Every host-cost charge is ``launch + nbytes·byte_cost +
    tuples·per_tuple[class]`` — linear in the spec constants — so the
    recorded per-cell forced-strategy timings admit a least-squares fit.
    Feature counts come from re-costing each cell's alternatives under
    basis specs (:func:`repro.opt.sim_host_override`); negative solution
    components are clipped to zero (a DeviceSpec constraint).  The fitted
    spec is then validated by re-running ``choose_theta`` on every cell:
    ``picks_changed`` lists cells whose chosen strategy moved off the
    recorded pick — the calibration acceptance gate requires none.
    """
    from repro.opt.cost import sim_host_override

    sessions: dict[tuple, object] = {}

    def cell_query(cell):
        key = (cell["n_left"], cell["n_right"], cell["skew"])
        if key not in sessions:
            sessions[key] = build_cell_session(*key)
        return (
            sessions[key],
            _cell_builder(sessions[key], cell["selectivity"]).build(),
        )

    names = [name for name, _ in _basis_specs()]
    rows, targets, labels = [], [], []
    for cell in data["cells"]:
        session, query = cell_query(cell)
        feats: dict[str, list[float]] = {}
        for _, spec in _basis_specs():
            with sim_host_override(spec):
                _, decision = choose_theta(query, session.catalog)
            for alt in decision.alternatives:
                feats.setdefault(alt.label, []).append(alt.est_seconds)
        for label, row in feats.items():
            if label not in cell["timings_ms"]:
                continue
            rows.append(row)
            targets.append(cell["timings_ms"][label] / 1e3)
            labels.append((cell, label))
    design = np.array(rows, dtype=np.float64)
    y = np.array(targets, dtype=np.float64)
    # Relative least squares: weight each observation by 1/y so a 2×
    # miss on a 100 µs cell costs the same as one on a 10 ms cell —
    # forced-strategy timings span orders of magnitude across the grid.
    w = 1.0 / np.maximum(y, 1e-30)
    try:
        from scipy.optimize import nnls

        theta, _ = nnls(design * w[:, None], y * w)
    except ImportError:
        theta, _, _, _ = np.linalg.lstsq(
            design * w[:, None], y * w, rcond=None
        )
        theta = np.clip(theta, 0.0, None)
    spec = _fitted_spec(theta)

    predicted = design @ theta
    residual = float(np.sqrt(np.mean(((predicted - y) * w) ** 2)))
    changed = []
    with sim_host_override(spec):
        for cell in data["cells"]:
            session, query = cell_query(cell)
            _, decision = choose_theta(query, session.catalog)
            if decision.chosen != cell["chosen"]:
                changed.append({
                    "selectivity": cell["selectivity"],
                    "skew": cell["skew"],
                    "n_right": cell["n_right"],
                    "recorded": cell["chosen"],
                    "calibrated": decision.chosen,
                })
    return {
        "constants": dict(zip(names, (float(t) for t in theta))),
        "relative_rms_error": round(residual, 4),
        "cells": len(data["cells"]),
        "observations": len(rows),
        "picks_changed": changed,
        "spec": spec,
    }


def report_calibration(result: dict) -> str:
    lines = ["calibrated sim-host constants (fit over recorded grid):"]
    for name, value in result["constants"].items():
        lines.append(f"  {name:<18} {value:.3e}")
    lines.append(
        f"relative rms error {result['relative_rms_error']} over "
        f"{result['observations']} observations in {result['cells']} cells"
    )
    if result["picks_changed"]:
        lines.append(
            f"PICKS CHANGED under the calibrated spec: "
            f"{result['picks_changed']}"
        )
    else:
        lines.append(
            "all recorded optimizer picks unchanged under the calibrated "
            "spec"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Markdown reporter
# ----------------------------------------------------------------------
def render_markdown(data: dict) -> str:
    lines = [
        "# Optimizer sweep (PR 8)",
        "",
        f"`n_left={data['meta']['n_left']}`, best of "
        f"{data['meta']['reps']} rep(s) per variant.",
        "",
        "| sel | skew | \\|R\\| | brute+pairs | sorted+pairs | sorted+runs "
        "| heuristic | optimizer | pick | vs fastest | gain |",
        "|---|---|---|---|---|---|---|---|---|---|---|",
    ]
    for c in data["cells"]:
        t = c["timings_ms"]
        lines.append(
            f"| {c['selectivity']} | {c['skew']} | {c['n_right']} "
            f"| {t['bruteforce+pairs']:.2f} | {t['sorted+pairs']:.2f} "
            f"| {t['sorted+runs']:.2f} | {t['heuristic']:.2f} "
            f"| {t['optimizer']:.2f} | {c['chosen']} "
            f"| {c['pick_vs_fastest']}x{'' if c['match'] else ' ⚠'} "
            f"| {c['heuristic_gain']}x |"
        )
    s = data["summary"]
    lines += [
        "",
        f"**match rate** {s['match_rate']} (≥ 0.80 required) · "
        f"**worst ratio** {s['worst_ratio']}x (≤ 1.5 required) · "
        f"**best gain over heuristic** {s['best_gain_over_heuristic']}x "
        f"(≥ 1.2 required).",
        "",
        "All timings are milliseconds of simulation-host wall-clock; every "
        "variant in a cell returned the identical count (asserted).",
    ]
    return "\n".join(lines)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="4-cell smoke")
    parser.add_argument("--reps", type=int, default=None)
    parser.add_argument("--out", type=Path, default=_RESULT_FILE)
    parser.add_argument(
        "--markdown", type=Path, metavar="JSON",
        help="render a recorded sweep JSON as markdown and exit",
    )
    parser.add_argument(
        "--calibrate", type=Path, metavar="JSON", nargs="?",
        const=_RESULT_FILE, default=None,
        help="fit SIM_HOST constants to a recorded sweep JSON and exit",
    )
    args = parser.parse_args()
    if args.calibrate:
        print(report_calibration(
            calibrate(json.loads(args.calibrate.read_text()))
        ))
    elif args.markdown:
        print(render_markdown(json.loads(args.markdown.read_text())))
    else:
        data = sweep(quick=args.quick, reps=args.reps)
        if not args.quick:
            args.out.write_text(json.dumps(data, indent=1) + "\n")
            print(f"recorded into {args.out}")
