"""Benchmarks for the §VII-B future-work extensions we implemented.

Cooperative scans, radix-clustered storage locality, the A&R theta join,
string-prefix selection and the disk-tier hierarchy — each with the shape
claim that motivated it.
"""

import numpy as np
from conftest import show

from repro.bench.harness import Experiment
from repro.core.relax import ValueRange
from repro.core.strings import (
    StringPredicate,
    StringPrefixColumn,
    string_select_approx,
    string_select_refine,
)
from repro.core.theta import Theta, ThetaOp, theta_join_approx, theta_join_refine
from repro.device.hierarchies import disk_hierarchy
from repro.device.machine import Machine
from repro.engine.cooperative import (
    ScanRequest,
    cooperative_select_approx,
    individual_scan_seconds,
)
from repro.storage.cluster import RadixClusteredColumn
from repro.storage.decompose import decompose_values
from repro.workloads.microbench import unique_shuffled_ints


def test_extension_cooperative_scans(benchmark, bench_n):
    """§VII-B: queries sharing one approximation stream read."""
    n = min(bench_n, 1_000_000)
    machine = Machine.paper_testbed()
    column = decompose_values(unique_shuffled_ints(n, 1), residual_bits=6)
    machine.gpu.load_column("v", column, None)
    requests = [
        ScanRequest(f"q{i}", ValueRange(i * n // 16, (i + 3) * n // 16))
        for i in range(8)
    ]

    def run():
        tl = machine.new_timeline()
        cooperative_select_approx(machine.gpu, tl, column, requests)
        return tl.total_seconds()

    coop = benchmark(run)
    solo = individual_scan_seconds(machine.gpu, column, requests)
    exp = Experiment(
        exp_id="ext-coop", title="Cooperative vs individual scans (8 queries)",
        x_label="",
    )
    exp.new_series("cooperative").add(0, coop, {"gpu": coop})
    exp.new_series("individual").add(0, solo, {"gpu": solo})
    show(exp)
    # 8 fused predicates cost ~(1 + 7·0.35)x one scan vs 8x: a >2x win.
    assert coop < 0.6 * solo


def test_extension_clustered_locality(benchmark, bench_n):
    """§VI-C3: clustering buys compression *and* scan locality."""
    n = min(bench_n, 1_000_000)
    rng = np.random.default_rng(2)
    centers = rng.integers(0, 2**24, 256)
    values = np.concatenate(
        [c + rng.integers(0, 2**8, n // 256) for c in centers]
    )

    column = benchmark(RadixClusteredColumn, values, 8)
    ids, touched = column.range_scan(0, 2**16)
    exp = Experiment(
        exp_id="ext-cluster", title="Radix clustering: bytes for a narrow scan",
        x_label="",
    )
    full = column.range_scan(None, None)[1]
    exp.new_series("narrow range").add(0, touched)
    exp.new_series("full scan").add(0, full)
    show(exp)
    assert touched < full / 10
    assert column.packed_nbytes < column.flat_packed_nbytes
    expected = np.flatnonzero(values <= 2**16)
    assert sorted(ids.tolist()) == sorted(expected.tolist())


def test_extension_theta_join(benchmark):
    """§IV-D: the approximation turns |L|x|R| work into candidate work."""
    machine = Machine.paper_testbed()
    rng = np.random.default_rng(3)
    left_v = rng.integers(0, 100_000, 20_000)
    right_v = rng.integers(0, 100_000, 200)
    left = decompose_values(left_v, residual_bits=6)
    right = decompose_values(right_v, residual_bits=6)
    machine.gpu.load_column("l", left, None)
    machine.gpu.load_column("r", right, None)
    theta = Theta(ThetaOp.WITHIN, delta=16)

    def run():
        tl = machine.new_timeline()
        pairs = theta_join_approx(machine.gpu, tl, left, right, theta)
        refined = theta_join_refine(machine.cpu, tl, left, right, theta, pairs)
        return tl, pairs, refined

    tl, pairs, refined = benchmark(run)
    # candidate work << the nested loop's pair count
    assert len(pairs) < 0.05 * len(left_v) * len(right_v)
    assert len(refined) <= len(pairs)
    # exactness spot check (materialize once, at the end — the contract)
    final = refined.canonicalized()
    sample = np.abs(
        left_v[final.left_positions] - right_v[final.right_positions]
    )
    assert int(sample.max(initial=0)) <= theta.delta


def test_extension_string_prefix_selection(benchmark):
    """§VII-B: fixed-length prefixes make string scans device-friendly."""
    rng = np.random.default_rng(4)
    syllables = ["pro", "mo", "eco", "sta", "lar", "ge", "bra", "ss"]
    words = [
        "".join(rng.choice(syllables, size=rng.integers(2, 5)))
        for _ in range(30_000)
    ]
    machine = Machine.paper_testbed()
    column = StringPrefixColumn(words, prefix_bytes=4)
    pred = StringPredicate.startswith("promo")

    def run():
        tl = machine.new_timeline()
        cand = string_select_approx(machine.gpu, tl, column, pred)
        refined = string_select_refine(machine.cpu, tl, column, pred, cand)
        return refined

    refined = benchmark(run)
    truth = [i for i, w in enumerate(words) if w.startswith("promo")]
    assert sorted(refined.tolist()) == truth
    # the device held 4 bytes/string, not the variable-length data
    assert column.device_nbytes == 4 * len(words)


def test_extension_disk_hierarchy(benchmark, bench_n):
    """§VII-B: the same A&R plans on an SSD/HDD hierarchy."""
    from repro import IntType, Session

    n = min(bench_n, 500_000)
    rng = np.random.default_rng(5)
    session = Session(disk_hierarchy())
    session.create_table("t", {"v": IntType()}, {"v": rng.integers(0, 10**6, n)})
    session.execute("select bwdecompose(v, 24) from t")
    sql = "select count(*) from t where v < 50000"

    ar = benchmark(session.execute, sql)
    classic = session.execute(sql, mode="classic")
    exp = Experiment(
        exp_id="ext-disk", title="A&R on an SSD/HDD hierarchy",
        x_label="",
    )
    exp.new_series("A&R (SSD approx + HDD residual)").add(
        0, ar.timeline.total_seconds(), ar.timeline.seconds_by_kind()
    )
    exp.new_series("full scan from HDD").add(
        0, classic.timeline.total_seconds(), classic.timeline.seconds_by_kind()
    )
    show(exp)
    assert ar.scalar("count_0") == classic.scalar("count_0")
    assert ar.timeline.total_seconds() < classic.timeline.total_seconds()
