"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures from the paper, but measurements of the paper's individual
design decisions: the translucent join versus a generic hash join, prefix
compression on/off, approximate-selection pushdown on/off, and the free
approximate answer versus full refinement.
"""

import numpy as np
import pytest
from conftest import show

from repro.bench.harness import Experiment
from repro.core.relax import ValueRange
from repro.core.translucent import translucent_join, translucent_join_reference
from repro.plan.expr import ColRef, Predicate
from repro.plan.logical import Aggregate, Query
from repro.storage.decompose import decompose_values
from repro.workloads.microbench import unique_shuffled_ints
from repro.workloads.spatial import SPATIAL_QUERY_SQL, SpatialConfig, build_spatial_session


def test_ablation_translucent_vs_hash_join(benchmark, bench_n):
    """The translucent join against the generic alternative.

    Algorithm 1 exists because a generic equi-join (hash build + probe)
    wastes work when one input is a subset of the other in the same
    permutation.  Compare modeled costs: merge pass vs hash build+probe.
    """
    n = min(bench_n, 1_000_000)
    rng = np.random.default_rng(0)
    a_ids = np.arange(n, dtype=np.int64)
    rng.shuffle(a_ids)
    r_ids = a_ids[rng.random(n) < 0.4]

    positions = benchmark(translucent_join, a_ids, r_ids)
    assert np.array_equal(a_ids[positions], r_ids)

    from repro.device.model import OpClass, XEON_E5_2650_X2

    merge_cost = XEON_E5_2650_X2.tuple_seconds(OpClass.SCAN, len(a_ids) + len(r_ids))
    hash_cost = XEON_E5_2650_X2.tuple_seconds(OpClass.HASH, len(a_ids)) + \
        XEON_E5_2650_X2.tuple_seconds(OpClass.GATHER, len(r_ids))
    exp = Experiment(
        exp_id="ablation-tjoin", title="Translucent join vs hash join",
        x_label="modeled",
    )
    exp.new_series("translucent (merge)").add(0, merge_cost)
    exp.new_series("generic hash join").add(0, hash_cost)
    show(exp)
    # O(|A|+|R|) sequential beats hash build + probe by a wide margin.
    assert merge_cost * 3 < hash_cost


def test_ablation_translucent_reference_agrees(benchmark):
    """The vectorized join must equal Algorithm 1 verbatim (spot check at
    benchmark scale, beyond the property tests' small inputs)."""
    rng = np.random.default_rng(1)
    a_ids = np.arange(50_000, dtype=np.int64)
    rng.shuffle(a_ids)
    r_ids = a_ids[rng.random(50_000) < 0.3]
    got = benchmark(translucent_join, a_ids, r_ids)
    assert np.array_equal(got, translucent_join_reference(a_ids, r_ids))


def test_ablation_prefix_compression(benchmark, bench_n):
    """Prefix compression (frame-of-reference base) on vs off (§VI-C2)."""
    n = min(bench_n, 1_000_000)
    values = unique_shuffled_ints(n) + 2_000_000_000  # large shared prefix

    def build_both():
        with_pc = decompose_values(values, residual_bits=8)
        without_pc = decompose_values(
            values, residual_bits=8, prefix_compression=False
        )
        return with_pc, without_pc

    with_pc, without_pc = benchmark(build_both)
    size_with = with_pc.approx_nbytes + with_pc.residual_nbytes
    size_without = without_pc.approx_nbytes + without_pc.residual_nbytes
    exp = Experiment(
        exp_id="ablation-prefix", title="Prefix compression footprint",
        x_label="bytes (reported as seconds field)",
    )
    exp.new_series("with prefix compression").add(0, size_with)
    exp.new_series("without").add(0, size_without)
    show(exp)
    assert size_with < 0.8 * size_without
    assert np.array_equal(with_pc.reconstruct(), values)
    assert np.array_equal(without_pc.reconstruct(), values)


def test_ablation_pushdown(benchmark, spatial_points):
    """Approximate-selection pushdown on vs off (§III-A).

    Without pushdown each selection's refinement runs before the next
    approximate selection: candidates cross the PCI-E bus once per
    predicate and refinements see larger candidate sets.
    """
    session = build_spatial_session(SpatialConfig(n_points=min(spatial_points, 500_000)))

    def run_both():
        with_pd = session.execute(SPATIAL_QUERY_SQL, pushdown=True)
        without_pd = session.execute(SPATIAL_QUERY_SQL, pushdown=False)
        return with_pd, without_pd

    with_pd, without_pd = benchmark(run_both)
    assert with_pd.scalar("count_0") == without_pd.scalar("count_0")
    exp = Experiment(
        exp_id="ablation-pushdown", title="Pushdown of approximate selections",
        x_label="",
    )
    exp.new_series("pushdown on").add(
        0, with_pd.timeline.total_seconds(), with_pd.timeline.seconds_by_kind()
    )
    exp.new_series("pushdown off").add(
        0, without_pd.timeline.total_seconds(),
        without_pd.timeline.seconds_by_kind(),
    )
    show(exp)
    assert with_pd.timeline.total_seconds() < without_pd.timeline.total_seconds()
    assert (
        with_pd.timeline.seconds_by_kind().get("bus", 0)
        <= without_pd.timeline.seconds_by_kind().get("bus", 0)
    )


def test_ablation_approximate_only(benchmark, spatial_points):
    """The free approximate answer vs the fully refined one (§III item 4)."""
    session = build_spatial_session(SpatialConfig(n_points=min(spatial_points, 500_000)))

    approx = benchmark(session.execute, SPATIAL_QUERY_SQL, mode="approximate")
    full = session.execute(SPATIAL_QUERY_SQL)
    exp = Experiment(
        exp_id="ablation-approx-only", title="Approximate answer vs refined",
        x_label="",
    )
    exp.new_series("approximate only").add(
        0, approx.timeline.total_seconds(), approx.timeline.seconds_by_kind()
    )
    exp.new_series("approximate + refine").add(
        0, full.timeline.total_seconds(), full.timeline.seconds_by_kind()
    )
    show(exp)
    bound = approx.approximate.bound("count_0")
    truth = full.scalar("count_0")
    assert bound.lo <= truth <= bound.hi
    assert approx.timeline.total_seconds() < full.timeline.total_seconds()
    # The approximation subplan never touches the host.
    assert "cpu" not in approx.timeline.seconds_by_kind()


def test_ablation_resolution_memory_tradeoff(benchmark):
    """Resolution vs device footprint: the knob §II-A describes.

    Decomposing with fewer device bits frees device memory but widens the
    error buckets — measure both sides of the trade.
    """
    values = unique_shuffled_ints(500_000, 3)

    def sweep():
        rows = []
        for device_bits in (8, 12, 16, 20, 24, 28, 32):
            col = decompose_values(values, device_bits=device_bits)
            rows.append(
                (device_bits, col.approx_nbytes, col.decomposition.max_error)
            )
        return rows

    rows = benchmark(sweep)
    footprints = [r[1] for r in rows]
    errors = [r[2] for r in rows]
    assert footprints == sorted(footprints)  # more bits, more device bytes
    assert errors == sorted(errors, reverse=True)  # more bits, less error
