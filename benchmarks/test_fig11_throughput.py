"""Fig 11: "A Gap in the Memory Wall" (paper §VI-E).

Paper: parallel CPU query streams scale near-linearly, then saturate at
the memory wall (~16 queries/s at ≥16 threads); the GPU-based A&R stream
is bound by the GPU's *own* memory, so running it next to the saturated
CPU streams costs little — throughputs combine almost additively
(16.2 + 13.4 → 26.0 queries/s).
"""

from conftest import show

from repro.bench.figures import fig11_throughput
from repro.workloads.spatial import SpatialConfig


def test_fig11_memory_wall(benchmark, spatial_points):
    config = SpatialConfig(n_points=spatial_points)
    exp = benchmark(fig11_throughput, config)
    show(exp)

    classic = exp.get("Classic (CPU parallel)")
    qps = {int(p.x): 1.0 / p.seconds for p in classic.points}

    # Near-linear at low thread counts.
    assert qps[2] > 1.8 * qps[1]
    assert qps[4] > 3.5 * qps[1]
    # The memory wall: going 16 → 32 threads gains almost nothing.
    assert qps[32] < 1.1 * qps[16]
    # Saturation well below linear scaling.
    assert qps[32] < 0.8 * 32 * qps[1]

    ar_qps = 1.0 / exp.get("A&R only").points[0].seconds
    with_ar_qps = 1.0 / exp.get("CPU w/ A&R").points[0].seconds
    cumulative = 1.0 / exp.get("Cumulative").points[0].seconds

    # GPU work barely disturbs the saturated CPU streams (paper: 16.2→12.6,
    # i.e. at most a modest dip)...
    assert with_ar_qps > 0.6 * qps[32]
    # ...so the combination is (near-)additive — the paper's headline.
    assert cumulative > 0.9 * (with_ar_qps + ar_qps)
    assert cumulative > qps[32]
