"""Fig 1 (background): the flash capacity/bandwidth trade-off.

Not an evaluation result — the paper uses Grupp et al.'s FAST'12 data to
motivate the capacity/velocity conflict.  Reproduced as a static dataset so
every figure in the paper has a regeneration target; the assertion encodes
the figure's message: within and across technologies, larger devices write
slower.
"""

from conftest import show

from repro.bench.figures import fig1_flash_background


def test_fig1_flash_tradeoff(benchmark):
    exp = benchmark(fig1_flash_background)
    show(exp)
    all_points = []
    for series in exp.series:
        # within one technology: capacity up, bandwidth down
        capacities = series.xs
        bandwidths = series.seconds  # MB/s in this container
        assert capacities == sorted(capacities)
        assert bandwidths == sorted(bandwidths, reverse=True)
        all_points.extend(zip(capacities, bandwidths))
    # across technologies: the frontier is monotone too
    all_points.sort()
    peak_so_far = float("inf")
    for _, bandwidth in all_points:
        assert bandwidth <= peak_so_far * 1.5  # no capacity jump gets faster
        peak_so_far = min(peak_so_far, bandwidth)
