"""Fig 8d/8e/8f: projection/join and grouping microbenchmarks (§VI-B).

Paper claims reproduced here:

* 8d — the A&R projection consistently outperforms the MonetDB projection
  on GPU-resident data.
* 8e — on distributed data A&R still wins over (almost) the whole sweep;
  see EXPERIMENTS.md for the low-selectivity deviation.
* 8f — A&R grouping beats MonetDB grouping and *improves with the number
  of groups* (fewer write conflicts on the grouping table).
"""

from conftest import show

from repro.bench.figures import fig8_projection, fig8f_grouping
from repro.bench.harness import crossover_x


def test_fig8d_projection_gpu_resident(benchmark, bench_n):
    exp = benchmark(fig8_projection, bench_n)
    show(exp)
    # Consistent win at every selectivity (paper §VI-B).
    assert crossover_x(exp, "Approximate + Refine", "MonetDB") is None
    # Fully resident: no refinement work.
    ar, approx = exp.get("Approximate + Refine"), exp.get("Approximate")
    for p_ar, p_ap in zip(ar.points, approx.points):
        assert p_ar.seconds == p_ap.seconds
    # Both implementations scale with the number of projected tuples.
    monetdb = exp.get("MonetDB")
    assert monetdb.seconds[-1] > monetdb.seconds[0]
    assert ar.seconds[-1] > ar.seconds[0]


def test_fig8e_projection_distributed(benchmark, bench_n):
    exp = benchmark(fig8_projection, bench_n, residual_bits=8)
    show(exp)
    ar, monetdb = exp.get("Approximate + Refine"), exp.get("MonetDB")
    # A&R wins over the overwhelming part of the sweep (all but the
    # lowest-selectivity point in our calibration; paper: everywhere).
    wins = sum(a < m for a, m in zip(ar.seconds, monetdb.seconds))
    assert wins >= len(ar.points) - 2, f"A&R won only {wins} points"
    assert ar.at(100).seconds < monetdb.at(100).seconds
    # Distributed: refinement is real work.
    approx = exp.get("Approximate")
    assert ar.at(100).seconds > approx.at(100).seconds


def test_fig8f_grouping(benchmark, bench_n):
    exp = benchmark(fig8f_grouping, bench_n)
    show(exp)
    ar, monetdb = exp.get("Approximate + Refine"), exp.get("MonetDB")
    # Paper: "consistently better than the standard MonetDB grouping".
    for p_ar, p_m in zip(ar.points, monetdb.points):
        assert p_ar.seconds < p_m.seconds
    # Paper: "performance improves with the number of groups due to fewer
    # write conflicts on the grouping table".
    assert ar.at(10).seconds > ar.at(100).seconds > ar.at(1000).seconds
    # The classic CPU grouping is insensitive to the group count.
    assert abs(monetdb.at(10).seconds - monetdb.at(1000).seconds) < 1e-9
