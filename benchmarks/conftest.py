"""Shared configuration for the figure-reproduction benchmarks.

Every file reproduces one figure of the paper's evaluation: it computes the
figure's series (modeled GPU/CPU/PCI seconds from the calibrated device
model), prints the rendered table, asserts the paper's shape claims, and
lets pytest-benchmark measure the wall-clock of the underlying simulation.

Scale knobs (environment variables):

* ``REPRO_BENCH_N``      — microbenchmark rows (default 2,000,000;
  paper: 100,000,000)
* ``REPRO_BENCH_POINTS`` — spatial points (default 1,000,000; paper: ~250M)
* ``REPRO_BENCH_SF``     — TPC-H scale factor (default 0.01; paper: 10)
"""

import os

import pytest


def env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


def env_float(name: str, default: float) -> float:
    return float(os.environ.get(name, default))


@pytest.fixture(scope="session")
def bench_n() -> int:
    return env_int("REPRO_BENCH_N", 2_000_000)


@pytest.fixture(scope="session")
def spatial_points() -> int:
    return env_int("REPRO_BENCH_POINTS", 1_000_000)


@pytest.fixture(scope="session")
def tpch_sf() -> float:
    return env_float("REPRO_BENCH_SF", 0.01)


def show(experiment) -> None:
    """Print a figure's rendered table (pytest -s shows it; the report
    generator collects the same renderings into EXPERIMENTS.md)."""
    print()
    print(experiment.render())
